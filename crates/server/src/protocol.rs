//! A minimal line protocol over any `BufRead`/`Write` transport.
//!
//! One request per line, verb first (case-insensitive):
//!
//! ```text
//! MEET term term …​ [WITHIN n] [LIMIT k]
//!                                 meet of full-text terms (meet^δ via
//!                                 WITHIN; LIMIT keeps the k best answers,
//!                                 served by a bounded sweep)
//! SQL select meet(a, b) from …​    the SQL-with-paths dialect
//!                                 (`from corpus(name), …` routes per query)
//! SEARCH term                     full-text hit count
//! USE corpus                      route this session at a forest corpus
//!                                 (`USE *` fans MEET/SEARCH across all)
//! CORPORA                         list the forest's corpora (default marked)
//! SNAPSHOT SAVE name              persist the serving backend to a snapshot
//! SNAPSHOT LOAD name [INTO c]     cold-load a snapshot, hot-swap it in —
//!                                 the whole backend, or just corpus `c` of
//!                                 a forest (other corpora untouched)
//!                                 (both gated by ServerConfig::snapshot_dir;
//!                                 `name` is a bare file inside that dir)
//! STATS [RESET]                   service counters incl. admission shed rate,
//!                                 cache hit rates and per-corpus query counts;
//!                                 RESET zeroes the window counters (monotonic
//!                                 totals like `served` keep counting)
//! METRICS                         the full telemetry surface in Prometheus
//!                                 text format: every STATS counter plus the
//!                                 latency histograms and stage counters from
//!                                 the metrics registry
//! TRACE [n]                       render the n most recent query traces
//!                                 (span trees with stage timings; default 5)
//! SLOW [n]                        render the n most recent slow-query traces
//! OBS ON|OFF                      runtime switch for telemetry recording
//! PING                            liveness check
//! QUIT                            end the session
//! ```
//!
//! Responses are framed so multi-line XML survives a line transport:
//!
//! ```text
//! OK <n>        followed by exactly n payload lines
//! ERR <message> single line, no payload
//! ```
//!
//! Every request line is assigned an id up front; errors carry it as a
//! trailing `(req <id>)` marker so an operator can correlate a failed
//! request with its trace (`TRACE`/`SLOW` render the same ids).
//!
//! Meet answers are serialized with
//! [`AnswerSet::to_detailed_xml`](ncq_core::AnswerSet::to_detailed_xml)
//! (tags, paths, distances and witnesses — the same fixture format the
//! golden suite pins); projections use the paper's `<answer>` row
//! markup. The function is transport-agnostic: tests drive it over
//! in-memory buffers, examples over OS pipes, and a TCP acceptor only
//! needs to hand each connection's stream pair to [`serve_lines`].

use crate::server::{Client, Request, Response};
use std::io::{BufRead, Write};

/// Serve one session: read commands from `input` until EOF or `QUIT`,
/// writing framed responses to `output`. Query errors are reported
/// in-band (`ERR …`); only transport failures surface as `io::Error`.
pub fn serve_lines<R: BufRead, W: Write>(
    client: &Client,
    input: R,
    mut output: W,
) -> std::io::Result<()> {
    let mut payload = String::new();
    // The session's corpus routing, set by `USE`. `None` = the
    // deployment's default corpus; `Some("*")` fans MEET/SEARCH out
    // across the whole catalog.
    let mut session_corpus: Option<String> = None;
    for line in input.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (verb, rest) = match trimmed.split_once(char::is_whitespace) {
            Some((v, r)) => (v, r.trim()),
            None => (trimmed, ""),
        };
        payload.clear();
        // Allocate the request id before dispatch: queries carry it as
        // their trace id, and *every* error frame — including parse
        // errors that never reach a worker — can be correlated.
        let req_id = ncq_obs::obs().next_trace_id();
        match verb.to_ascii_uppercase().as_str() {
            "QUIT" => break,
            "PING" => write_ok(&mut output, "")?,
            "STATS" => match rest.to_ascii_uppercase().as_str() {
                "" => {
                    payload.push_str(&format_stats(client));
                    write_ok(&mut output, &payload)?;
                }
                "RESET" => {
                    client.reset_window_stats();
                    write_ok(&mut output, "window counters reset")?;
                }
                _ => write_err(
                    &mut output,
                    &format!("STATS takes no argument or RESET, got {rest:?}"),
                    req_id,
                )?,
            },
            "METRICS" => {
                payload.push_str(&format_metrics(client));
                write_ok(&mut output, &payload)?;
            }
            "TRACE" => match parse_ring_count(rest) {
                Ok(n) => {
                    render_traces(&ncq_obs::obs().recent_traces(n), &mut payload);
                    write_ok(&mut output, &payload)?;
                }
                Err(msg) => write_err(&mut output, &msg, req_id)?,
            },
            "SLOW" => match parse_ring_count(rest) {
                Ok(n) => {
                    render_traces(&ncq_obs::obs().recent_slow(n), &mut payload);
                    write_ok(&mut output, &payload)?;
                }
                Err(msg) => write_err(&mut output, &msg, req_id)?,
            },
            "OBS" => match rest.to_ascii_uppercase().as_str() {
                "ON" => {
                    ncq_obs::obs().set_enabled(true);
                    write_ok(&mut output, "telemetry on")?;
                }
                "OFF" => {
                    ncq_obs::obs().set_enabled(false);
                    write_ok(&mut output, "telemetry off")?;
                }
                _ => write_err(
                    &mut output,
                    &format!("OBS takes ON or OFF, got {rest:?}"),
                    req_id,
                )?,
            },
            "CORPORA" => respond(client, Request::Corpora, &mut output, &mut payload, req_id)?,
            "USE" if !rest.is_empty() => match validate_use(client, rest) {
                Ok(()) => {
                    session_corpus = Some(rest.to_owned());
                    payload.push_str(&format!("using corpus {rest}"));
                    write_ok(&mut output, &payload)?;
                }
                Err(msg) => write_err(&mut output, &msg, req_id)?,
            },
            "USE" => write_err(&mut output, "USE needs a corpus name (or *)", req_id)?,
            "MEET" => match parse_meet(rest) {
                Ok(request) => respond(
                    client,
                    request.with_corpus(session_corpus.clone()),
                    &mut output,
                    &mut payload,
                    req_id,
                )?,
                Err(msg) => write_err(&mut output, &msg, req_id)?,
            },
            "SQL" if !rest.is_empty() => respond(
                client,
                Request::sql(rest).with_corpus(session_corpus.clone()),
                &mut output,
                &mut payload,
                req_id,
            )?,
            "SEARCH" if !rest.is_empty() => respond(
                client,
                Request::search(rest).with_corpus(session_corpus.clone()),
                &mut output,
                &mut payload,
                req_id,
            )?,
            "SQL" => write_err(&mut output, "SQL needs a query", req_id)?,
            "SEARCH" => write_err(&mut output, "SEARCH needs a term", req_id)?,
            "SNAPSHOT" => match parse_snapshot(rest) {
                Ok(request) => respond(client, request, &mut output, &mut payload, req_id)?,
                Err(msg) => write_err(&mut output, &msg, req_id)?,
            },
            other => write_err(&mut output, &format!("unknown verb {other:?}"), req_id)?,
        }
    }
    output.flush()
}

/// `TRACE`/`SLOW` ring-count argument: optional, defaults to 5.
fn parse_ring_count(rest: &str) -> Result<usize, String> {
    if rest.is_empty() {
        return Ok(5);
    }
    rest.parse::<usize>()
        .map_err(|_| format!("expected a count, got {rest:?}"))
}

/// Render a batch of finished traces, newest first, separated by the
/// traces' own multi-line span trees.
fn render_traces(traces: &[std::sync::Arc<ncq_obs::FinishedTrace>], payload: &mut String) {
    for (i, trace) in traces.iter().enumerate() {
        if i > 0 {
            payload.push('\n');
        }
        payload.push_str(&trace.render().join("\n"));
    }
}

/// A `USE` argument must name a corpus of the serving deployment (or
/// `*`, which needs the deployment to have corpora at all); validating
/// at `USE` time gives the operator one clear error instead of a
/// failure on every subsequent query.
fn validate_use(client: &Client, name: &str) -> Result<(), String> {
    let (names, _) = client.corpora().map_err(|e| e.to_string())?;
    if names.is_empty() {
        return Err("this deployment serves no corpora (single-document backend)".to_owned());
    }
    if name == "*" || names.iter().any(|n| n == name) {
        Ok(())
    } else {
        Err(format!(
            "unknown corpus {name:?} (CORPORA lists {})",
            names.join(", ")
        ))
    }
}

/// The `STATS` payload: one `key=value` line per counter, plus the
/// derived admission shed rate (shed / admission attempts) — the
/// back-pressure signal an operator watches to size the queue — and,
/// on forest deployments, one `corpus.<name>=<served>` line per corpus
/// that has seen queries (per-corpus load at a glance). The robustness
/// counters (`retries` through `partial_answers`) stay zero for purely
/// local deployments; non-zero values mean the failover routers are
/// working around sick replicas.
fn format_stats(client: &Client) -> String {
    let stats = client.stats();
    let mut out = format!(
        "served={}\nbatches={}\nmax_batch={}\nterm_decodes={}\nterm_cache_hits={}\n\
         term_cache_hit_rate={:.4}\nsem_hits={}\nsem_misses={}\nsem_hit_rate={:.4}\n\
         sem_evictions={}\nshed={}\nshed_rate={:.4}\n\
         retries={}\nfailovers={}\nreplicas_down={}\ntimeouts={}\npartial_answers={}",
        stats.served,
        stats.batches,
        stats.max_batch,
        stats.term_decodes,
        stats.term_cache_hits,
        stats.term_cache_hit_rate(),
        stats.sem_hits,
        stats.sem_misses,
        stats.sem_hit_rate(),
        stats.sem_evictions,
        stats.shed,
        stats.shed_rate(),
        stats.retries,
        stats.failovers,
        stats.replicas_down,
        stats.timeouts,
        stats.partial_answers
    );
    for (name, served) in &stats.queries_by_corpus {
        out.push_str(&format!("\ncorpus.{name}={served}"));
    }
    // Snapshot-open telemetry: how many cold starts were served
    // zero-copy off a mapped v3 file vs materialized (legacy decode or
    // the no-mmap fallback). Registering the counters here also makes
    // them show up in METRICS via the registry render even before the
    // first open.
    let registry = &ncq_obs::obs().registry;
    out.push_str(&format!(
        "\nsnapshot.mapped={}",
        registry.counter("ncq_snapshot_mapped_total").get()
    ));
    out.push_str(&format!(
        "\nsnapshot.materialized={}",
        registry.counter("ncq_snapshot_materialized_total").get()
    ));
    // Kernel-dispatch telemetry: which SIMD mode the process picked
    // and how many calls each kernel family served, split scalar vs
    // vector. The CI compat matrix diffs these between `NCQ_SIMD=on`
    // and `off` legs to prove both paths really executed.
    out.push_str(&format!("\nsimd.mode={}", ncq_simd::mode().name()));
    for (kernel, scalar, vector) in ncq_simd::dispatch_stats().lines() {
        out.push_str(&format!("\nsimd.{kernel}.scalar={scalar}"));
        out.push_str(&format!("\nsimd.{kernel}.vector={vector}"));
    }
    out
}

/// The `METRICS` payload: the whole telemetry surface in Prometheus
/// text format. A strict superset of `STATS` — every service counter
/// appears as an `ncq_*` metric — plus the derived rates as gauges,
/// per-corpus query counts as a labelled counter family, the slow-query
/// tally from the trace ring, and everything the instrumented stages
/// recorded into the metrics registry (latency histograms with their
/// quantile summaries, plan/remote/batch counters).
fn format_metrics(client: &Client) -> String {
    let stats = client.stats();
    let mut out = String::new();
    let counter = |out: &mut String, name: &str, v: u64| {
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    };
    counter(&mut out, "ncq_served_total", stats.served as u64);
    counter(&mut out, "ncq_batches_total", stats.batches as u64);
    counter(
        &mut out,
        "ncq_term_decodes_total",
        stats.term_decodes as u64,
    );
    counter(
        &mut out,
        "ncq_term_cache_hits_total",
        stats.term_cache_hits as u64,
    );
    counter(&mut out, "ncq_sem_hits_total", stats.sem_hits as u64);
    counter(&mut out, "ncq_sem_misses_total", stats.sem_misses as u64);
    counter(
        &mut out,
        "ncq_sem_evictions_total",
        stats.sem_evictions as u64,
    );
    counter(&mut out, "ncq_shed_total", stats.shed as u64);
    counter(&mut out, "ncq_retries_total", stats.retries);
    counter(&mut out, "ncq_failovers_total", stats.failovers);
    counter(&mut out, "ncq_timeouts_total", stats.timeouts);
    counter(
        &mut out,
        "ncq_partial_answers_total",
        stats.partial_answers as u64,
    );
    counter(
        &mut out,
        "ncq_slow_queries_total",
        ncq_obs::obs().slow_count(),
    );
    let gauge = |out: &mut String, name: &str, v: f64| {
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v:.4}\n"));
    };
    gauge(&mut out, "ncq_max_batch", stats.max_batch as f64);
    gauge(&mut out, "ncq_shed_rate", stats.shed_rate());
    gauge(&mut out, "ncq_sem_hit_rate", stats.sem_hit_rate());
    gauge(
        &mut out,
        "ncq_term_cache_hit_rate",
        stats.term_cache_hit_rate(),
    );
    gauge(&mut out, "ncq_replicas_down", stats.replicas_down as f64);
    if !stats.queries_by_corpus.is_empty() {
        out.push_str("# TYPE ncq_corpus_queries_total counter\n");
        for (name, served) in &stats.queries_by_corpus {
            out.push_str(&format!(
                "ncq_corpus_queries_total{{corpus=\"{name}\"}} {served}\n"
            ));
        }
    }
    out.push_str(&format!(
        "# TYPE ncq_simd_mode gauge\nncq_simd_mode{{mode=\"{}\"}} 1\n",
        ncq_simd::mode().name()
    ));
    out.push_str("# TYPE ncq_simd_dispatch_total counter\n");
    for (kernel, scalar, vector) in ncq_simd::dispatch_stats().lines() {
        out.push_str(&format!(
            "ncq_simd_dispatch_total{{kernel=\"{kernel}\",path=\"scalar\"}} {scalar}\n"
        ));
        out.push_str(&format!(
            "ncq_simd_dispatch_total{{kernel=\"{kernel}\",path=\"vector\"}} {vector}\n"
        ));
    }
    for line in ncq_obs::obs().registry.render() {
        out.push_str(&line);
        out.push('\n');
    }
    // The framing counts lines: no trailing newline.
    while out.ends_with('\n') {
        out.pop();
    }
    out
}

/// `MEET t1 t2 … [WITHIN n] [LIMIT k]` — terms are whitespace-
/// separated; the trailing clauses (either order) become the distance
/// bound and the answer-count bound. `LIMIT 0` is refused like the
/// dialect's `limit 0`.
fn parse_meet(rest: &str) -> Result<Request, String> {
    let mut terms: Vec<String> = rest.split_whitespace().map(str::to_owned).collect();
    let mut within = None;
    let mut limit = None;
    loop {
        if terms.len() < 2 {
            break;
        }
        let clause = terms[terms.len() - 2].to_ascii_uppercase();
        match clause.as_str() {
            "WITHIN" => {
                let n = terms[terms.len() - 1].parse::<usize>().map_err(|_| {
                    format!("WITHIN needs a number, got {:?}", terms[terms.len() - 1])
                })?;
                within = Some(n);
            }
            "LIMIT" => {
                let n = terms[terms.len() - 1]
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0)
                    .ok_or_else(|| {
                        format!(
                            "LIMIT needs a positive number, got {:?}",
                            terms[terms.len() - 1]
                        )
                    })?;
                limit = Some(n);
            }
            _ => break,
        }
        terms.truncate(terms.len() - 2);
    }
    if terms.is_empty() {
        return Err("MEET needs at least one term".to_owned());
    }
    Ok(Request::MeetTerms {
        terms,
        within,
        limit,
        corpus: None,
    })
}

/// `SNAPSHOT SAVE <name>` / `SNAPSHOT LOAD <name> [INTO <corpus>]` —
/// names are single whitespace-free tokens. This is a deliberate
/// (breaking) hardening: earlier releases accepted names with spaces,
/// so a snapshot saved as `my file.ncq` back then is no longer
/// addressable over the wire — the error hints at renaming it on disk
/// inside the snapshot dir. `INTO` splices the load into one forest
/// corpus instead of swapping the whole backend.
fn parse_snapshot(rest: &str) -> Result<Request, String> {
    let tokens: Vec<&str> = rest.split_whitespace().collect();
    match tokens.as_slice() {
        [mode, path] => match mode.to_ascii_uppercase().as_str() {
            "SAVE" => Ok(Request::snapshot_save(*path)),
            "LOAD" => Ok(Request::snapshot_load(*path)),
            other => Err(format!("SNAPSHOT knows SAVE and LOAD, not {other:?}")),
        },
        [mode, path, into, corpus] if into.eq_ignore_ascii_case("into") => {
            match mode.to_ascii_uppercase().as_str() {
                "LOAD" => Ok(Request::snapshot_load_into(*path, *corpus)),
                "SAVE" => Err("SNAPSHOT SAVE does not take INTO".to_owned()),
                other => Err(format!("SNAPSHOT knows SAVE and LOAD, not {other:?}")),
            }
        }
        [] | [_] => Err("SNAPSHOT needs SAVE|LOAD and a path".to_owned()),
        _ => Err(
            "SNAPSHOT arguments are SAVE|LOAD <name> [INTO <corpus>]; snapshot names \
             cannot contain spaces (rename files saved by older releases on disk)"
                .to_owned(),
        ),
    }
}

fn respond<W: Write>(
    client: &Client,
    request: Request,
    output: &mut W,
    payload: &mut String,
    req_id: u64,
) -> std::io::Result<()> {
    match client.request_with_id(request, req_id) {
        Ok(Response::Answers(a)) => {
            payload.push_str(&a.to_detailed_xml());
            write_ok(output, payload)
        }
        Ok(Response::Rows(r)) => {
            payload.push_str(&r.to_answer_xml());
            write_ok(output, payload)
        }
        Ok(Response::Count(n)) => {
            payload.push_str(&n.to_string());
            write_ok(output, payload)
        }
        Ok(Response::Info(msg)) => {
            payload.push_str(&msg);
            write_ok(output, payload)
        }
        Ok(Response::Corpora { names, default }) => {
            for (i, name) in names.iter().enumerate() {
                if i > 0 {
                    payload.push('\n');
                }
                payload.push_str(name);
                if default.as_deref() == Some(name.as_str()) {
                    payload.push_str(" (default)");
                }
            }
            write_ok(output, payload)
        }
        Ok(Response::Error(msg)) => write_err(output, &msg, req_id),
        Err(e) => write_err(output, &e.to_string(), req_id),
    }
}

fn write_ok<W: Write>(output: &mut W, payload: &str) -> std::io::Result<()> {
    let lines = if payload.is_empty() {
        0
    } else {
        payload.lines().count()
    };
    writeln!(output, "OK {lines}")?;
    if !payload.is_empty() {
        writeln!(output, "{payload}")?;
    }
    Ok(())
}

fn write_err<W: Write>(output: &mut W, message: &str, req_id: u64) -> std::io::Result<()> {
    // Keep the frame parseable: an error is always exactly one line.
    // The trailing marker carries the request id so a failure can be
    // matched to its trace in the `TRACE`/`SLOW` rings.
    let flat = message.replace('\n', " ");
    writeln!(output, "ERR {flat} (req {req_id})")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use ncq_core::Database;
    use std::sync::Arc;

    fn session(input: &str) -> String {
        let db = Arc::new(
            Database::from_xml_str(
                r#"<bib><article key="BB99"><author>Ben Bit</author>
                   <year>1999</year></article></bib>"#,
            )
            .unwrap(),
        );
        let server = Server::start(
            db,
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        let mut out = Vec::new();
        serve_lines(&server.client(), input.as_bytes(), &mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn meet_command_returns_framed_xml() {
        let out = session("MEET Bit 1999\nQUIT\n");
        let mut lines = out.lines();
        let header = lines.next().unwrap();
        let n: usize = header.strip_prefix("OK ").unwrap().parse().unwrap();
        let body: Vec<&str> = lines.collect();
        assert_eq!(body.len(), n);
        assert!(body[0].starts_with("<answer>"));
        assert!(out.contains("tag=\"article\""));
        assert!(out.contains(">1999</witness>"));
    }

    #[test]
    fn within_bounds_the_meet() {
        // article meet needs distance 3 here (Bit climbs 2, 1999 climbs 1
        // — actually author/cdata → article is 2, year/cdata → 2; bound 1
        // kills it).
        let out = session("MEET Bit 1999 WITHIN 1\n");
        assert!(out.starts_with("OK"));
        assert!(!out.contains("result"), "{out}");
    }

    #[test]
    fn sql_search_ping_and_errors() {
        let out = session(
            "PING\nSEARCH 1999\nSQL select meet(a, b) from bib/% as a, bib/% as b \
             where a contains 'Ben' and b contains 'Bit'\nSQL !!!\nNONSENSE\nMEET\n",
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "OK 0"); // PING
        assert_eq!(lines[1], "OK 1"); // SEARCH
        assert_eq!(lines[2], "1");
        assert!(out.contains("tag=\"cdata\"")); // Ben Bit meet at the cdata
        assert!(out.contains("ERR ")); // the SQL parse error
        assert!(out.contains("unknown verb"));
        assert!(out.contains("MEET needs at least one term"));
    }

    #[test]
    fn stats_are_framed_key_values() {
        let out = session("MEET Bit 1999\nSTATS\nQUIT\n");
        // Skip the MEET frame, find the STATS frame.
        let stats_at = out
            .lines()
            .position(|l| l.starts_with("served="))
            .expect("stats payload");
        let lines: Vec<&str> = out.lines().collect();
        let header = lines[stats_at - 1];
        let n: usize = header.strip_prefix("OK ").unwrap().parse().unwrap();
        // 17 counter/rate lines + 2 snapshot-open counters + simd.mode
        // + 6 kernels × {scalar,vector}.
        assert_eq!(n, 32, "one line per counter plus the derived rates");
        assert_eq!(lines[stats_at], "served=1");
        // The derived cache hit rates ride the frame.
        for key in ["sem_hit_rate=0.0000", "term_cache_hit_rate=0.0000"] {
            assert!(
                lines[stats_at..stats_at + n].contains(&key),
                "missing {key}: {out}"
            );
        }
        // The semantic-cache counters ride the frame: the single MEET
        // above was a cacheable miss.
        for key in ["sem_hits=0", "sem_misses=1", "sem_evictions=0"] {
            assert!(
                lines[stats_at..stats_at + n].contains(&key),
                "missing {key}: {out}"
            );
        }
        assert!(lines[stats_at..stats_at + n]
            .iter()
            .any(|l| l.starts_with("shed=0")));
        assert!(lines[stats_at..stats_at + n]
            .iter()
            .any(|l| l.starts_with("shed_rate=0.0000")));
        // Robustness counters ride the same frame, zero for a purely
        // local deployment.
        for key in [
            "retries=0",
            "failovers=0",
            "replicas_down=0",
            "timeouts=0",
            "partial_answers=0",
        ] {
            assert!(
                lines[stats_at..stats_at + n].contains(&key),
                "missing {key}: {out}"
            );
        }
    }

    #[test]
    fn projection_rows_are_framed() {
        let out = session("SQL select t from bib/article as t\n");
        assert!(out.starts_with("OK "));
        assert!(out.contains("<result> article </result>"));
    }

    #[test]
    fn bad_within_is_an_error() {
        let out = session("MEET Bit WITHIN abc\n");
        assert!(out.contains("ERR WITHIN needs a number"));
    }

    #[test]
    fn limit_clause_bounds_the_meet_on_the_wire() {
        // Unbounded, the two terms produce several ranked answers;
        // LIMIT 1 keeps only the best. Both clause orders parse.
        let full = session("MEET Bit 1999\n");
        let one = session("MEET Bit 1999 LIMIT 1\n");
        let full_results = full.matches("<result").count();
        assert!(full_results >= 1);
        assert_eq!(one.matches("<result").count(), 1.min(full_results));
        let both = session("MEET Bit 1999 WITHIN 9 LIMIT 1\n");
        assert_eq!(both.matches("<result").count(), 1);
        let swapped = session("MEET Bit 1999 LIMIT 1 WITHIN 9\n");
        assert_eq!(swapped, both);
    }

    #[test]
    fn bad_limit_is_an_error() {
        for bad in ["MEET Bit LIMIT abc\n", "MEET Bit LIMIT 0\n"] {
            let out = session(bad);
            assert!(out.contains("ERR LIMIT needs a positive number"), "{out}");
        }
    }

    #[test]
    fn snapshot_verbs_round_trip_over_the_wire() {
        let dir = std::env::temp_dir().join("ncq-protocol-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let db = Arc::new(
            Database::from_xml_str(
                r#"<bib><article key="BB99"><author>Ben Bit</author>
                   <year>1999</year></article></bib>"#,
            )
            .unwrap(),
        );
        let server = Server::start(
            db,
            ServerConfig {
                workers: 1,
                snapshot_dir: Some(dir.clone()),
                ..ServerConfig::default()
            },
        );
        let mut out = Vec::new();
        serve_lines(
            &server.client(),
            "SNAPSHOT SAVE wire.ncq\nSNAPSHOT LOAD wire.ncq\nMEET Bit 1999\n\
             SNAPSHOT SAVE ../escape.ncq\nSNAPSHOT\nSNAPSHOT PRUNE x\nQUIT\n"
                .as_bytes(),
            &mut out,
        )
        .unwrap();
        let out = String::from_utf8(out).unwrap();
        assert!(out.contains("snapshot saved"), "{out}");
        assert!(out.contains("snapshot loaded"), "{out}");
        assert!(out.contains("tag=\"article\""), "{out}");
        assert!(out.contains("bare file name"), "{out}");
        assert!(out.contains("ERR SNAPSHOT needs SAVE|LOAD and a path"));
        assert!(out.contains("ERR SNAPSHOT knows SAVE and LOAD"));
        std::fs::remove_file(dir.join("wire.ncq")).ok();
    }

    /// Tests that depend on the process-global telemetry switch being
    /// on serialize against the test that flips it.
    static OBS_SWITCH: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn stats_reset_zeroes_window_counters_but_not_served() {
        let out = session("MEET Bit 1999\nSTATS RESET\nSTATS\nQUIT\n");
        assert!(out.contains("window counters reset"), "{out}");
        let after = &out[out.find("window counters reset").unwrap()..];
        // Monotonic totals survive the reset; the window counters from
        // the MEET (a sem-cache miss, two term decodes) are zeroed.
        assert!(after.contains("served=1"), "{out}");
        assert!(after.contains("sem_misses=0"), "{out}");
        assert!(after.contains("term_decodes=0"), "{out}");
        assert!(after.contains("batches=0"), "{out}");
    }

    #[test]
    fn stats_reset_clears_histogram_windows() {
        // Histogram buckets are window state like the hit/miss
        // counters next to them: RESET must zero them too (it used to
        // leave them accumulating across windows).
        let h = ncq_obs::obs().registry.histogram("ncq_reset_pin_ns");
        h.record(4096);
        h.record(100);
        let before = session("METRICS\nQUIT\n");
        assert!(before.contains("ncq_reset_pin_ns_count 2"), "{before}");
        let out = session("STATS RESET\nMETRICS\nQUIT\n");
        assert!(out.contains("window counters reset"), "{out}");
        assert!(out.contains("ncq_reset_pin_ns_count 0"), "{out}");
        assert!(out.contains("ncq_reset_pin_ns_sum 0"), "{out}");
        // The handle keeps recording into the fresh window.
        h.record(9);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn stats_and_metrics_report_kernel_dispatch() {
        let out = session("MEET Bit 1999\nSTATS\nMETRICS\nQUIT\n");
        let mode = ncq_simd::mode().name();
        assert!(out.contains(&format!("simd.mode={mode}")), "{out}");
        assert!(out.contains("simd.intersect.scalar="), "{out}");
        assert!(out.contains("simd.merge.vector="), "{out}");
        assert!(
            out.contains("# TYPE ncq_simd_dispatch_total counter"),
            "{out}"
        );
        assert!(
            out.contains(&format!("ncq_simd_mode{{mode=\"{mode}\"}} 1")),
            "{out}"
        );
        assert!(
            out.contains("ncq_simd_dispatch_total{kernel=\"lower_bound\",path=\"vector\"}"),
            "{out}"
        );
    }

    #[test]
    fn stats_rejects_unknown_arguments() {
        let out = session("STATS BANANA\n");
        assert!(
            out.contains("ERR STATS takes no argument or RESET"),
            "{out}"
        );
    }

    #[test]
    fn metrics_verb_renders_prometheus_text() {
        let out = session("MEET Bit 1999\nMETRICS\nQUIT\n");
        assert!(out.contains("# TYPE ncq_served_total counter"), "{out}");
        assert!(out.contains("ncq_served_total 1"), "{out}");
        assert!(out.contains("ncq_sem_misses_total 1"), "{out}");
        assert!(out.contains("# TYPE ncq_shed_rate gauge"), "{out}");
        assert!(out.contains("ncq_shed_rate 0.0000"), "{out}");
        assert!(out.contains("ncq_term_cache_hit_rate 0.0000"), "{out}");
        // The METRICS frame is well-formed: header line count matches.
        let metrics_at = out
            .lines()
            .position(|l| l.starts_with("# TYPE ncq_served_total"))
            .unwrap();
        let lines: Vec<&str> = out.lines().collect();
        let n: usize = lines[metrics_at - 1]
            .strip_prefix("OK ")
            .unwrap()
            .parse()
            .unwrap();
        assert!(n >= 30, "counters + gauges + registry lines: {out}");
    }

    #[test]
    fn err_frames_carry_the_request_id() {
        let out = session("NONSENSE\nMEET\n");
        for line in out.lines() {
            assert!(line.starts_with("ERR "), "{out}");
            assert!(line.contains("(req "), "missing request id: {out}");
            assert!(line.ends_with(')'), "{out}");
        }
        // Ids are per-request: the two errors carry different ids.
        let ids: Vec<&str> = out
            .lines()
            .map(|l| l.rsplit("(req ").next().unwrap())
            .collect();
        assert_ne!(ids[0], ids[1], "{out}");
    }

    #[test]
    fn trace_verb_renders_recent_span_trees() {
        let _guard = OBS_SWITCH.lock().unwrap();
        let out = session("MEET Bit 1999\nTRACE 200\nQUIT\n");
        // The ring is process-global; with a large enough window the
        // MEET we just ran is in there, carrying its op annotation and
        // the serialize stage from the worker.
        assert!(out.contains("trace "), "{out}");
        assert!(out.contains("op=meet"), "{out}");
        assert!(out.contains("serialize"), "{out}");
        let slow = session("SLOW 5\nQUIT\n");
        assert!(slow.starts_with("OK "), "{slow}");
    }

    #[test]
    fn obs_verb_flips_the_telemetry_switch() {
        let _guard = OBS_SWITCH.lock().unwrap();
        let out = session("OBS OFF\nOBS ON\nOBS BANANA\n");
        assert!(out.contains("telemetry off"), "{out}");
        assert!(out.contains("telemetry on"), "{out}");
        assert!(out.contains("ERR OBS takes ON or OFF"), "{out}");
    }

    #[test]
    fn snapshot_verbs_are_disabled_by_default_on_the_wire() {
        // `session()` uses the default config (no snapshot_dir): the
        // control verbs must refuse in-band, queries keep working.
        let out = session("SNAPSHOT SAVE x.ncq\nMEET Bit 1999\nQUIT\n");
        assert!(out.contains("ERR snapshot verbs are disabled"), "{out}");
        assert!(out.contains("tag=\"article\""), "{out}");
    }
}
