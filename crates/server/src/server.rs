//! The query service: bounded admission, worker pool, batched execution.
//!
//! One `Shared` state is owned jointly by the [`Server`] (which joins
//! the workers) and every [`Client`] handle. The admission queue is a
//! `Mutex<VecDeque>` with two condvars — `work` wakes workers, `space`
//! wakes admitters — which is deadlock-free by construction: workers
//! only ever *drain* the queue (they never submit), so a full queue
//! always makes progress and a saturated client always eventually
//! admits or observes shutdown.

use ncq_core::{
    AnswerSet, BackendError, BatchQuery, CatalogError, Database, MeetBackend, MeetOptions,
    MeetStrategy,
};
use ncq_fulltext::HitSet;
use ncq_query::{parse_query, run_query_opts, QueryConfig, QueryOptions, QueryOutput, RowSet};
use ncq_store::snapshot::SnapshotError;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering::Relaxed};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock};
use std::thread;
use std::time::{Duration, Instant};

/// The corpus argument that fans a request out across every corpus of
/// a forest deployment (`USE *` on the wire).
pub const ALL_CORPORA: &str = "*";

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads; `0` = one per core (thread-per-core).
    pub workers: usize,
    /// Admission queue capacity; [`Client::request`] blocks and
    /// [`Client::try_request`] refuses beyond it. Minimum 1.
    pub queue_capacity: usize,
    /// Maximum requests one worker evaluates as a batch. Minimum 1.
    pub batch_max: usize,
    /// How long a worker waits for stragglers to join a non-full batch.
    /// Zero (the default) disables the window: batches still form from
    /// queued backlog, which is the only batching that helps
    /// *synchronous* clients — a blocking client cannot submit its next
    /// request while the worker sits in the window, so a non-zero
    /// window just taxes latency (`BENCH_pr2.json` measures it). Set a
    /// window only for pipelined front ends that submit without
    /// waiting.
    pub batch_window: Duration,
    /// Meet evaluation strategy for every query served
    /// ([`MeetStrategy::Auto`] = depth-aware planner).
    pub strategy: MeetStrategy,
    /// Projection row limit for SQL queries.
    pub max_rows: usize,
    /// Distinct terms each worker keeps decoded (FIFO eviction);
    /// `0` disables the cache.
    pub term_cache_capacity: usize,
    /// Distinct *query results* the service keeps (FIFO eviction,
    /// shared across workers); `0` disables the semantic cache. A hit
    /// skips evaluation entirely. Entries are generation-tagged per
    /// corpus: `SNAPSHOT LOAD … INTO c` invalidates only corpus `c`'s
    /// entries, a whole-backend load invalidates everything.
    pub sem_cache_capacity: usize,
    /// Directory the `SNAPSHOT SAVE`/`SNAPSHOT LOAD` control verbs may
    /// touch. `None` (the default) disables them entirely — the verbs
    /// ride the same socket as queries, so an exposed server must not
    /// hand arbitrary-path file writes to every TCP client. When set,
    /// requests name a bare file inside this directory (no separators,
    /// no `..`).
    pub snapshot_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            queue_capacity: 1024,
            batch_max: 32,
            batch_window: Duration::ZERO,
            strategy: MeetStrategy::Auto,
            max_rows: 10_000,
            term_cache_capacity: 4096,
            sem_cache_capacity: 1024,
            snapshot_dir: None,
        }
    }
}

/// One query, as admitted by the queue.
///
/// The `corpus` fields route against a forest deployment: `None` hits
/// the backend's default corpus, `Some(name)` a named corpus,
/// `Some("*")` ([`ALL_CORPORA`]) fans out across the whole catalog
/// (MEET and SEARCH only). On single-document backends any
/// `Some(...)` routing is an in-band error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// The paper's signature query: full-text search each term, meet the
    /// hit groups (optionally bounded by `within` = `meet^δ`).
    MeetTerms {
        /// Search terms, one hit group each.
        terms: Vec<String>,
        /// Maximum witness distance (`meet^δ`).
        within: Option<usize>,
        /// At most this many ranked answers (`LIMIT k` on the wire);
        /// the engines stop sweeping once the k-th best distance is
        /// unbeatable. On a fan-out request the bound applies per
        /// corpus.
        limit: Option<usize>,
        /// Corpus routing (see the enum docs).
        corpus: Option<String>,
    },
    /// A query in the SQL-with-paths dialect.
    Sql {
        /// Query text.
        src: String,
        /// Session default corpus; an explicit `from corpus(name)` in
        /// the text wins. `"*"` is not meaningful for SQL.
        corpus: Option<String>,
    },
    /// A bare full-text search, answered with the hit count.
    Search {
        /// The term.
        term: String,
        /// Corpus routing (see the enum docs).
        corpus: Option<String>,
    },
    /// List the corpora this deployment serves (empty for a
    /// single-document backend) and the default corpus.
    Corpora,
    /// Persist the serving backend's state as a versioned snapshot
    /// file (the line protocol's `SNAPSHOT SAVE <name>`). Gated by
    /// [`ServerConfig::snapshot_dir`]: refused in-band unless the
    /// directory is configured, and `path` must be a bare file name
    /// resolved inside it.
    SnapshotSave {
        /// Destination file name inside the configured snapshot dir.
        path: PathBuf,
    },
    /// Cold-load a snapshot and hot-swap it in (the line protocol's
    /// `SNAPSHOT LOAD <name> [INTO <corpus>]`). Without a corpus the
    /// whole backend swaps, keeping its *shape*
    /// ([`MeetBackend::open_snapshot_like`]): a sharded deployment
    /// reloads sharded at its current K. With a corpus, only that
    /// corpus of a forest deployment swaps
    /// ([`MeetBackend::reload_corpus`]): the fresh engine keeps the
    /// corpus's shape and every *other* corpus's engine is shared by
    /// refcount, so sibling corpora — and all in-flight batches — are
    /// untouched. Either way the swap takes effect for batches formed
    /// after this request completes, and worker term caches are
    /// invalidated. Gated by [`ServerConfig::snapshot_dir`] like the
    /// save verb.
    SnapshotLoad {
        /// Source file name inside the configured snapshot dir.
        path: PathBuf,
        /// Forest corpus to splice the snapshot into; `None` swaps the
        /// whole backend.
        corpus: Option<String>,
    },
}

impl Request {
    /// A [`Request::MeetTerms`] without a distance bound, against the
    /// default corpus.
    pub fn meet_terms<I, S>(terms: I) -> Request
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Request::MeetTerms {
            terms: terms.into_iter().map(Into::into).collect(),
            within: None,
            limit: None,
            corpus: None,
        }
    }

    /// A [`Request::Sql`] from query text (default corpus).
    pub fn sql(src: impl Into<String>) -> Request {
        Request::Sql {
            src: src.into(),
            corpus: None,
        }
    }

    /// A [`Request::Search`] for one term (default corpus).
    pub fn search(term: impl Into<String>) -> Request {
        Request::Search {
            term: term.into(),
            corpus: None,
        }
    }

    /// A [`Request::SnapshotSave`] to the given file.
    pub fn snapshot_save(path: impl Into<PathBuf>) -> Request {
        Request::SnapshotSave { path: path.into() }
    }

    /// A [`Request::SnapshotLoad`] from the given file (whole-backend
    /// swap).
    pub fn snapshot_load(path: impl Into<PathBuf>) -> Request {
        Request::SnapshotLoad {
            path: path.into(),
            corpus: None,
        }
    }

    /// A [`Request::SnapshotLoad`] spliced into one forest corpus.
    pub fn snapshot_load_into(path: impl Into<PathBuf>, corpus: impl Into<String>) -> Request {
        Request::SnapshotLoad {
            path: path.into(),
            corpus: Some(corpus.into()),
        }
    }

    /// This request routed at the given corpus (`None` clears the
    /// routing; snapshot saves and `CORPORA` are unaffected).
    pub fn with_corpus(mut self, corpus: Option<String>) -> Request {
        match &mut self {
            Request::MeetTerms { corpus: c, .. }
            | Request::Sql { corpus: c, .. }
            | Request::Search { corpus: c, .. } => *c = corpus,
            Request::SnapshotSave { .. } | Request::SnapshotLoad { .. } | Request::Corpora => {}
        }
        self
    }
}

/// What the service answers.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Ranked meet answers.
    Answers(AnswerSet),
    /// Projection rows.
    Rows(RowSet),
    /// Full-text hit count.
    Count(usize),
    /// A control-plane acknowledgement (snapshot save/load), one line
    /// of human-readable detail.
    Info(String),
    /// The corpora of a forest deployment ([`Request::Corpora`]) —
    /// names in catalog order plus the default corpus. Both empty for
    /// single-document backends.
    Corpora {
        /// Corpus names, catalog order.
        names: Vec<String>,
        /// The default corpus, if the backend routes by corpus.
        default: Option<String>,
    },
    /// The query failed (parse error, row-limit explosion, …). The
    /// service stays up; errors are per-request.
    Error(String),
}

/// Client-visible service errors (the queue, not the query).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The server is shutting down; no new requests are admitted.
    Closed,
    /// The admission queue is full ([`Client::try_request`] only).
    Saturated,
    /// The worker processing the request died before replying.
    Disconnected,
    /// The request was served but answered [`Response::Error`]
    /// (convenience accessors like [`Client::meet_terms`] surface it
    /// here).
    Query(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Closed => write!(f, "server is shut down"),
            ServerError::Saturated => write!(f, "admission queue is full"),
            ServerError::Disconnected => write!(f, "worker dropped the request"),
            ServerError::Query(msg) => write!(f, "query failed: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Counters accumulated since start, readable while serving.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Requests answered.
    pub served: usize,
    /// Batches executed.
    pub batches: usize,
    /// Largest batch observed.
    pub max_batch: usize,
    /// Term look-ups that ran a full-text search.
    pub term_decodes: usize,
    /// Term look-ups answered from a worker cache (shared decodes).
    pub term_cache_hits: usize,
    /// Cacheable queries (MEET/SQL against one corpus) answered from
    /// the semantic result cache — evaluation skipped entirely.
    pub sem_hits: usize,
    /// Cacheable queries that had to evaluate. For any run without
    /// config changes, `sem_hits + sem_misses` equals the cacheable
    /// queries served (the coherence suite pins the reconciliation).
    pub sem_misses: usize,
    /// Semantic-cache entries dropped: FIFO capacity evictions plus
    /// generation-stale entries removed on lookup after a snapshot
    /// swap.
    pub sem_evictions: usize,
    /// Requests refused at admission ([`Client::try_request`] on a full
    /// queue) plus connections refused by the TCP acceptor's connection
    /// cap — every form of shedding the service performs.
    pub shed: usize,
    /// Queries served per corpus, sorted by name — populated only when
    /// requests route by corpus (forest deployments; a fan-out request
    /// counts once per corpus it reached). Read per-corpus load and
    /// shed pressure from here.
    pub queries_by_corpus: Vec<(String, usize)>,
    /// Remote-replica calls that needed a backoff-retry round (merged
    /// from the serving backend's failover routers; zero for purely
    /// local deployments).
    pub retries: u64,
    /// Remote calls answered by a replica other than the first one
    /// tried.
    pub failovers: u64,
    /// Replicas currently marked down across every failover router.
    pub replicas_down: u64,
    /// Remote calls that hit a connect/read/write timeout.
    pub timeouts: u64,
    /// Fan-out answers degraded to partial because every replica of
    /// some corpus was unavailable (the answer carries a typed
    /// `<partial>` marker instead of silently missing results).
    pub partial_answers: usize,
}

impl ServerStats {
    /// Share of admission attempts that were shed: `shed / (served +
    /// shed)`. Served is the right denominator for a drained queue —
    /// every admitted request is eventually served — and keeps the
    /// rate meaningful while the server is still running.
    pub fn shed_rate(&self) -> f64 {
        let attempts = self.served + self.shed;
        if attempts == 0 {
            0.0
        } else {
            self.shed as f64 / attempts as f64
        }
    }

    /// Share of cacheable queries answered from the semantic result
    /// cache: `sem_hits / (sem_hits + sem_misses)`, `0.0` before any
    /// cacheable query.
    pub fn sem_hit_rate(&self) -> f64 {
        let lookups = self.sem_hits + self.sem_misses;
        if lookups == 0 {
            0.0
        } else {
            self.sem_hits as f64 / lookups as f64
        }
    }

    /// Share of term look-ups served from a worker's decode cache:
    /// `term_cache_hits / (term_cache_hits + term_decodes)`, `0.0`
    /// before any look-up.
    pub fn term_cache_hit_rate(&self) -> f64 {
        let lookups = self.term_cache_hits + self.term_decodes;
        if lookups == 0 {
            0.0
        } else {
            self.term_cache_hits as f64 / lookups as f64
        }
    }
}

#[derive(Default)]
struct Counters {
    served: AtomicUsize,
    batches: AtomicUsize,
    max_batch: AtomicUsize,
    term_decodes: AtomicUsize,
    term_cache_hits: AtomicUsize,
    sem_hits: AtomicUsize,
    sem_misses: AtomicUsize,
    sem_evictions: AtomicUsize,
    shed: AtomicUsize,
    partial_answers: AtomicUsize,
    /// Per-corpus query counts. A mutex (not a sharded atomic map)
    /// because the set of corpora is tiny and the increment sits next
    /// to a full query evaluation.
    by_corpus: Mutex<BTreeMap<String, usize>>,
}

impl Counters {
    fn snapshot(&self) -> ServerStats {
        ServerStats {
            served: self.served.load(Relaxed),
            batches: self.batches.load(Relaxed),
            max_batch: self.max_batch.load(Relaxed),
            term_decodes: self.term_decodes.load(Relaxed),
            term_cache_hits: self.term_cache_hits.load(Relaxed),
            sem_hits: self.sem_hits.load(Relaxed),
            sem_misses: self.sem_misses.load(Relaxed),
            sem_evictions: self.sem_evictions.load(Relaxed),
            shed: self.shed.load(Relaxed),
            queries_by_corpus: self
                .by_corpus
                .lock()
                .expect("corpus counter lock")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            partial_answers: self.partial_answers.load(Relaxed),
            ..ServerStats::default()
        }
    }

    fn note_corpus(&self, name: &str) {
        *self
            .by_corpus
            .lock()
            .expect("corpus counter lock")
            .entry(name.to_owned())
            .or_insert(0) += 1;
    }

    /// Zero the *window* counters — the ones an operator reads as
    /// rates over a measurement window (cache hits/misses, shedding,
    /// batching shape) — while leaving the monotonic lifetime totals
    /// (`served`, per-corpus counts) untouched. The `STATS RESET`
    /// verb; remote robustness counters live in the backend's routers
    /// and are not reset here.
    fn reset_window(&self) {
        for counter in [
            &self.batches,
            &self.max_batch,
            &self.term_decodes,
            &self.term_cache_hits,
            &self.sem_hits,
            &self.sem_misses,
            &self.sem_evictions,
            &self.shed,
            &self.partial_answers,
        ] {
            counter.store(0, Relaxed);
        }
    }
}

struct Job {
    request: Request,
    reply: mpsc::Sender<Response>,
    /// The request's trace/correlation id: allocated at admission,
    /// begins the worker-side trace, and rides `ERR` responses so a
    /// client-side failure is greppable in `TRACE`/`SLOW` output.
    trace_id: u64,
}

struct QueueState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    /// The serving backend. Behind an `RwLock` so `SNAPSHOT LOAD` can
    /// hot-swap a cold-started engine in; workers take one read-clone
    /// per batch (an uncontended read lock + refcount bump), so the
    /// steady-state cost is nil and a swap never stalls in-flight
    /// evaluation — old batches finish on the old `Arc`.
    db: RwLock<Arc<dyn MeetBackend>>,
    /// Bumped on every backend swap; workers drop their term caches
    /// when it moves (cached decodes refer to the previous engine).
    generation: AtomicUsize,
    /// Invalidation generations for the semantic cache, split by scope:
    /// a whole-backend swap bumps `full`, a per-corpus splice bumps
    /// only that corpus's entry. Swappers mutate this while still
    /// holding the `db` *write* lock and readers snapshot it under the
    /// *read* lock, so a batch can never pair a fresh engine with
    /// stale epochs (or vice versa). Lock order: `db`, then `epochs`.
    epochs: Mutex<SemEpochs>,
    /// The semantic result cache, shared across workers (unlike the
    /// per-worker term caches — a result hit saves a whole evaluation,
    /// which dwarfs the mutex).
    sem: Mutex<SemCache>,
    config: ServerConfig,
    state: Mutex<QueueState>,
    /// Signalled when jobs are queued or shutdown begins.
    work: Condvar,
    /// Signalled when queue slots free up or shutdown begins.
    space: Condvar,
    stats: Counters,
}

/// Snapshot-swap generations the semantic cache validates against.
#[derive(Debug, Clone, Default)]
struct SemEpochs {
    /// Whole-backend swaps (`SNAPSHOT LOAD` without `INTO`).
    full: usize,
    /// Per-corpus splices (`SNAPSHOT LOAD … INTO c`), keyed by corpus.
    per_corpus: HashMap<String, usize>,
}

impl SemEpochs {
    fn corpus(&self, name: &str) -> usize {
        self.per_corpus.get(name).copied().unwrap_or(0)
    }
}

/// One cached query result, tagged with the epochs observed when its
/// evaluation *started* — a result computed on an engine that was
/// swapped out mid-flight tags as already stale and is never served.
struct SemEntry {
    response: Response,
    corpus: String,
    full: usize,
    corpus_epoch: usize,
}

/// Semantic result cache: normalized request key → response. FIFO
/// eviction like the term cache; shared across workers behind
/// [`Shared::sem`].
struct SemCache {
    map: HashMap<String, SemEntry>,
    order: VecDeque<String>,
    capacity: usize,
}

impl SemCache {
    fn new(capacity: usize) -> SemCache {
        SemCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// A still-valid entry for `key`, or `None`. A generation-stale
    /// entry is removed on sight (returned in `evicted` so the caller
    /// can count it) — it can never become valid again.
    fn lookup(&mut self, key: &str, epochs: &SemEpochs, evicted: &mut usize) -> Option<Response> {
        let entry = self.map.get(key)?;
        if entry.full == epochs.full && entry.corpus_epoch == epochs.corpus(&entry.corpus) {
            return Some(entry.response.clone());
        }
        self.map.remove(key);
        self.order.retain(|k| k != key);
        *evicted += 1;
        None
    }

    /// Insert (or refresh) an entry, evicting FIFO-oldest past
    /// capacity; returns how many entries were evicted.
    fn insert(
        &mut self,
        key: String,
        corpus: String,
        response: Response,
        epochs: &SemEpochs,
    ) -> usize {
        let mut evicted = 0;
        if !self.map.contains_key(&key) {
            while self.map.len() >= self.capacity.max(1) {
                match self.order.pop_front() {
                    Some(oldest) => {
                        self.map.remove(&oldest);
                        evicted += 1;
                    }
                    None => break,
                }
            }
            self.order.push_back(key.clone());
        }
        let corpus_epoch = epochs.corpus(&corpus);
        self.map.insert(
            key,
            SemEntry {
                response,
                corpus,
                full: epochs.full,
                corpus_epoch,
            },
        );
        evicted
    }
}

impl Shared {
    /// The current backend (a refcount bump, not a copy) together with
    /// its generation. Both are read under the read lock — and a swap
    /// bumps the generation while still holding the write lock — so
    /// the pair is always consistent: a worker can never observe a new
    /// engine with an old generation (which would let it serve
    /// un-invalidated term-cache decodes from the previous corpus).
    fn backend(&self) -> (Arc<dyn MeetBackend>, usize) {
        let guard = self.db.read().expect("backend lock");
        (Arc::clone(&guard), self.generation.load(Relaxed))
    }

    /// Like [`Shared::backend`], with the semantic-cache epochs read
    /// under the same read-lock hold — the triple is consistent for
    /// the whole batch.
    fn backend_and_epochs(&self) -> (Arc<dyn MeetBackend>, usize, SemEpochs) {
        let guard = self.db.read().expect("backend lock");
        let epochs = self.epochs.lock().expect("epoch lock").clone();
        (Arc::clone(&guard), self.generation.load(Relaxed), epochs)
    }

    /// Counters plus the serving backend's failover-router counters
    /// (retries, failovers, down replicas, timeouts) — merged at
    /// snapshot time because they live in the backend's routers, not
    /// in the service layer.
    fn stats_snapshot(&self) -> ServerStats {
        let mut stats = self.stats.snapshot();
        let (backend, _) = self.backend();
        let remote = backend.robustness_stats();
        stats.retries = remote.retries;
        stats.failovers = remote.failovers;
        stats.replicas_down = remote.replicas_down;
        stats.timeouts = remote.timeouts;
        stats
    }
}

/// The running service. Dropping (or [`Server::shutdown`]) drains the
/// queue and joins the workers.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

/// A cheaply clonable blocking handle to a [`Server`].
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Server {
    /// Spawn the worker pool over a loaded database. The structural
    /// meet index is built eagerly so the first queries don't race to
    /// build it.
    pub fn start(db: Arc<Database>, config: ServerConfig) -> Server {
        Server::start_backend(db, config)
    }

    /// Spawn the worker pool over any [`MeetBackend`] — the
    /// single-process [`Database`] or a sharded engine. Workers are
    /// agnostic: they decode terms, batch, and meet through the trait.
    pub fn start_backend(db: Arc<dyn MeetBackend>, config: ServerConfig) -> Server {
        db.store().meet_index();
        let workers = if config.workers == 0 {
            thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        };
        let sem_capacity = config.sem_cache_capacity;
        let shared = Arc::new(Shared {
            db: RwLock::new(db),
            generation: AtomicUsize::new(0),
            epochs: Mutex::new(SemEpochs::default()),
            sem: Mutex::new(SemCache::new(sem_capacity)),
            config,
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            stats: Counters::default(),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("ncq-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Server { shared, workers }
    }

    /// Cold-start the service from a snapshot file: the single-process
    /// [`Database`] is loaded (meet index, stats and postings arrive
    /// pre-computed — no parse, no O(n log n) preprocess) and the
    /// worker pool spun up over it.
    pub fn open_snapshot(
        path: impl AsRef<Path>,
        config: ServerConfig,
    ) -> Result<Server, SnapshotError> {
        let db = Arc::new(Database::open_snapshot(path)?);
        Ok(Server::start(db, config))
    }

    /// Cold-start a *forest* service from a manifest file: every
    /// corpus entry opens from its snapshot (shard-aware — entries
    /// with `shards > 1` cold-start as `ncq-shard::ShardedDb`,
    /// reusing the stored partition cut), verified against the
    /// manifest's recorded checksums, and the worker pool spins up
    /// over the resulting [`ncq_core::ForestBackend`]. Unqualified queries hit
    /// the manifest's default corpus; `USE <corpus>` / `from
    /// corpus(name)` route the rest.
    pub fn open_manifest(
        path: impl AsRef<Path>,
        config: ServerConfig,
    ) -> Result<Server, CatalogError> {
        let forest = ncq_shard::open_forest(path)?;
        Ok(Server::start_backend(Arc::new(forest), config))
    }

    /// A new client handle.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Number of worker threads serving.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Current counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats_snapshot()
    }

    /// Stop admitting, drain the queue, join the workers; returns the
    /// final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.stop_and_join();
        self.shared.stats_snapshot()
    }

    fn stop_and_join(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("queue lock");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

impl Client {
    fn submit(
        &self,
        request: Request,
        block: bool,
        trace_id: u64,
    ) -> Result<mpsc::Receiver<Response>, ServerError> {
        let capacity = self.shared.config.queue_capacity.max(1);
        let (tx, rx) = mpsc::channel();
        let mut state = self.shared.state.lock().expect("queue lock");
        loop {
            if state.shutdown {
                return Err(ServerError::Closed);
            }
            if state.queue.len() < capacity {
                break;
            }
            if !block {
                self.shared.stats.shed.fetch_add(1, Relaxed);
                return Err(ServerError::Saturated);
            }
            state = self.shared.space.wait(state).expect("queue lock");
        }
        state.queue.push_back(Job {
            request,
            reply: tx,
            trace_id,
        });
        drop(state);
        self.shared.work.notify_all();
        Ok(rx)
    }

    /// Admit (blocking on a full queue) and wait for the answer.
    pub fn request(&self, request: Request) -> Result<Response, ServerError> {
        self.request_with_id(request, ncq_obs::obs().next_trace_id())
    }

    /// [`Client::request`] under a caller-allocated trace/request id —
    /// front ends that already stamped the request (the line protocol's
    /// per-line id, which also rides `ERR` responses) pass it through
    /// so the worker-side trace carries the same id.
    pub fn request_with_id(
        &self,
        request: Request,
        trace_id: u64,
    ) -> Result<Response, ServerError> {
        let rx = self.submit(request, true, trace_id)?;
        rx.recv().map_err(|_| ServerError::Disconnected)
    }

    /// Admit without blocking — [`ServerError::Saturated`] on a full
    /// queue — then wait for the answer.
    pub fn try_request(&self, request: Request) -> Result<Response, ServerError> {
        let rx = self.submit(request, false, ncq_obs::obs().next_trace_id())?;
        rx.recv().map_err(|_| ServerError::Disconnected)
    }

    /// Zero the window state (`STATS RESET`): cache hit/miss, shedding
    /// and batching-shape counters restart, and every registered
    /// histogram's buckets clear with them — a latency histogram is
    /// window state exactly like the hit/miss counters it sits next
    /// to. Monotonic lifetime totals (`served`, per-corpus counts) and
    /// registry counters keep counting.
    pub fn reset_window_stats(&self) {
        self.shared.stats.reset_window();
        ncq_obs::obs().registry.reset_histograms();
    }

    /// Convenience: meet of full-text terms, unwrapped to an answer set.
    pub fn meet_terms<I, S>(&self, terms: I) -> Result<AnswerSet, ServerError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        match self.request(Request::meet_terms(terms))? {
            Response::Answers(a) => Ok(a),
            Response::Error(msg) => Err(ServerError::Query(msg)),
            other => Err(ServerError::Query(format!("unexpected response {other:?}"))),
        }
    }

    /// Convenience: run a SQL-dialect query.
    pub fn sql(&self, src: impl Into<String>) -> Result<Response, ServerError> {
        self.request(Request::sql(src))
    }

    /// Current counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats_snapshot()
    }

    /// Convenience: the corpora this deployment serves and its default
    /// (both empty/`None` for single-document backends).
    pub fn corpora(&self) -> Result<(Vec<String>, Option<String>), ServerError> {
        match self.request(Request::Corpora)? {
            Response::Corpora { names, default } => Ok((names, default)),
            Response::Error(msg) => Err(ServerError::Query(msg)),
            other => Err(ServerError::Query(format!("unexpected response {other:?}"))),
        }
    }

    /// Record one shed request on behalf of a front end that refuses
    /// work before it reaches the queue (the TCP acceptor's connection
    /// cap) — keeps [`ServerStats::shed_rate`] covering every form of
    /// shedding the service performs.
    pub(crate) fn note_shed(&self) {
        self.shared.stats.shed.fetch_add(1, Relaxed);
    }
}

// ----- worker side -----

/// Per-worker decoded-term cache (FIFO eviction). The database is
/// immutable, so entries never invalidate; the cap only bounds memory.
/// Entries are `Arc<HitSet>` so handing a cached decode to the meet
/// operators is a refcount bump, not a deep copy of the posting lists.
///
/// Keys are `corpus \0 term`: the same term decodes differently per
/// corpus of a forest, and corpus names can never contain NUL
/// (enforced by the manifest/catalog name validation), so the split at
/// the first NUL is unambiguous.
struct TermCache {
    map: HashMap<String, Arc<HitSet>>,
    order: VecDeque<String>,
    capacity: usize,
}

impl TermCache {
    fn new(capacity: usize) -> TermCache {
        TermCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Fallible since the backend may be a remote replica set: a decode
    /// that fails (every replica down) is a typed error, never a
    /// silently empty hit set — and is *not* cached, so the next
    /// request retries against recovered replicas.
    fn get_or_decode(
        &mut self,
        shared: &Shared,
        db: &Arc<dyn MeetBackend>,
        corpus: &str,
        term: &str,
    ) -> Result<Arc<HitSet>, BackendError> {
        if self.capacity == 0 {
            shared.stats.term_decodes.fetch_add(1, Relaxed);
            let _decode = ncq_obs::trace::span("term_decode");
            ncq_obs::trace::annotate("term", term.to_owned());
            return Ok(Arc::new(db.try_search(term)?));
        }
        let key = format!("{corpus}\0{term}");
        if let Some(hits) = self.map.get(&key) {
            shared.stats.term_cache_hits.fetch_add(1, Relaxed);
            ncq_obs::trace::event("term_cache", format!("hit {term}"));
            return Ok(Arc::clone(hits));
        }
        shared.stats.term_decodes.fetch_add(1, Relaxed);
        if self.map.len() >= self.capacity {
            if let Some(oldest) = self.order.pop_front() {
                self.map.remove(&oldest);
            }
        }
        let _decode = ncq_obs::trace::span("term_decode");
        ncq_obs::trace::annotate("term", term.to_owned());
        let hits = Arc::new(db.try_search(term)?);
        self.map.insert(key.clone(), Arc::clone(&hits));
        self.order.push_back(key);
        Ok(hits)
    }

    /// Drop every cached decode (the backend was swapped).
    fn invalidate(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// Per-worker reusable buffers: input hit groups are assembled here
/// instead of reallocating per query.
#[derive(Default)]
struct Scratch {
    inputs: Vec<Arc<HitSet>>,
}

fn worker_loop(shared: &Shared) {
    let mut cache = TermCache::new(shared.config.term_cache_capacity);
    let mut scratch = Scratch::default();
    let mut seen_generation = shared.generation.load(Relaxed);
    while let Some(batch) = next_batch(shared) {
        // One backend per batch: a concurrent SNAPSHOT LOAD swaps the
        // engine for *subsequent* batches; cached term decodes from the
        // old engine are dropped when the generation moves. Backend,
        // generation and semantic-cache epochs are read as one
        // consistent triple (see [`Shared::backend_and_epochs`]).
        let (db, generation, epochs) = shared.backend_and_epochs();
        if generation != seen_generation {
            cache.invalidate();
            seen_generation = generation;
        }
        shared.stats.batches.fetch_add(1, Relaxed);
        shared.stats.max_batch.fetch_max(batch.len(), Relaxed);
        serve_batch(shared, &db, &epochs, &mut cache, &mut scratch, batch);
    }
}

/// A single-corpus meet that missed the semantic cache: decoded and
/// waiting for the grouped batch evaluation.
struct PendingMeet {
    job: usize,
    engine: Arc<dyn MeetBackend>,
    inputs: Vec<Arc<HitSet>>,
    options: MeetOptions,
    sem_key: Option<String>,
    corpus: String,
    /// The request's trace, suspended while the job waits for its
    /// group's shared evaluation (`None` when tracing is off).
    trace: Option<ncq_obs::Trace>,
}

/// Registry handle for the end-to-end request latency histogram.
fn request_ns_histogram() -> &'static Arc<ncq_obs::Histogram> {
    static H: std::sync::OnceLock<Arc<ncq_obs::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| ncq_obs::obs().registry.histogram("ncq_request_ns"))
}

/// Seal the current request's trace into the trace ring (and the
/// slow-query log when over threshold) and record its end-to-end
/// latency. A no-op when tracing is off.
fn finish_request_trace() {
    if let Some(done) = ncq_obs::obs().finish_trace() {
        request_ns_histogram().record(done.total_ns);
    }
}

/// The `op` label a request kind contributes to its trace root.
fn request_kind(request: &Request) -> &'static str {
    match request {
        Request::MeetTerms { .. } => "meet",
        Request::Sql { .. } => "sql",
        Request::Search { .. } => "search",
        Request::Corpora => "corpora",
        Request::SnapshotSave { .. } => "snapshot_save",
        Request::SnapshotLoad { .. } => "snapshot_load",
    }
}

/// Serve one admitted batch.
///
/// Single-corpus MEET requests take the vectorized path: semantic-cache
/// lookup first (a hit skips evaluation entirely), then the misses are
/// grouped per engine and evaluated through
/// [`MeetBackend::try_meet_hit_groups_batch`] — one shared plane sweep
/// over the union of the group's hit lists on the single-process
/// engine. Single-corpus SQL is cached the same way (keyed on the
/// canonical printed parse). Everything else (fan-out, search, control
/// verbs) runs through [`execute`] exactly as before.
fn serve_batch(
    shared: &Shared,
    db: &Arc<dyn MeetBackend>,
    epochs: &SemEpochs,
    cache: &mut TermCache,
    scratch: &mut Scratch,
    batch: Vec<Job>,
) {
    let sem_on = shared.config.sem_cache_capacity > 0;
    let mut responses: Vec<Option<Response>> = Vec::with_capacity(batch.len());
    responses.resize_with(batch.len(), || None);
    let mut pending: Vec<PendingMeet> = Vec::new();

    // Phase 1: classify; answer sem-cache hits and inline work now.
    let batch_len = batch.len();
    for (ji, job) in batch.iter().enumerate() {
        ncq_obs::obs().begin_trace(job.trace_id);
        ncq_obs::trace::annotate("op", request_kind(&job.request).to_owned());
        ncq_obs::trace::annotate("batch", batch_len.to_string());
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match &job.request {
                Request::MeetTerms {
                    terms,
                    within,
                    limit,
                    corpus,
                } if corpus.as_deref() != Some(ALL_CORPORA) => {
                    let (target, stat_name) = match resolve_corpus(db, corpus) {
                        Ok(pair) => pair,
                        Err(msg) => return Some(Response::Error(msg)),
                    };
                    if let Some(name) = &stat_name {
                        shared.stats.note_corpus(name);
                    }
                    let corpus_name = stat_name.unwrap_or_default();
                    let options = MeetOptions {
                        max_distance: *within,
                        limit: *limit,
                        strategy: shared.config.strategy,
                        ..MeetOptions::default()
                    };
                    // Normalized key: resolved corpus + options + the
                    // term list in request order (order is positional —
                    // witness `input` indices depend on it).
                    let sem_key = sem_on.then(|| {
                        format!(
                            "{corpus_name}\0M\0{within:?}\0{limit:?}\0{}",
                            terms.join("\x1f")
                        )
                    });
                    if let Some(key) = &sem_key {
                        if let Some(hit) = sem_lookup(shared, key, epochs) {
                            return Some(hit);
                        }
                    }
                    let mut inputs = Vec::with_capacity(terms.len());
                    for term in terms {
                        match cache.get_or_decode(shared, &target, &corpus_name, term) {
                            Ok(hits) => inputs.push(hits),
                            Err(e) => return Some(Response::Error(e.to_string())),
                        }
                    }
                    pending.push(PendingMeet {
                        job: ji,
                        engine: target,
                        inputs,
                        options,
                        sem_key,
                        corpus: corpus_name,
                        // Park the trace with the job; phase 2 resumes
                        // it around the grouped evaluation.
                        trace: ncq_obs::trace::suspend(),
                    });
                    None
                }
                Request::Sql { src, corpus } if corpus.as_deref() != Some(ALL_CORPORA) => {
                    // Accounting mirrors [`execute`]: the session (or
                    // default) corpus, independent of any `from
                    // corpus(name)` inside the text.
                    if let Some(name) = corpus
                        .as_deref()
                        .map(str::to_owned)
                        .or_else(|| db.default_corpus())
                    {
                        shared.stats.note_corpus(&name);
                    }
                    // Key on the canonical printed parse so whitespace/
                    // case variants share an entry; the *resolved*
                    // corpus (text wins over session wins over default)
                    // scopes the invalidation epoch.
                    let sem_key = match (sem_on, parse_query(src)) {
                        (true, Ok(q)) => {
                            let resolved = q
                                .corpus
                                .clone()
                                .or_else(|| corpus.clone())
                                .or_else(|| db.default_corpus())
                                .unwrap_or_default();
                            Some((
                                format!("{resolved}\0S\0{}\0{q}", corpus.as_deref().unwrap_or("")),
                                resolved,
                            ))
                        }
                        _ => None, // parse errors answer in-band below
                    };
                    if let Some((key, _)) = &sem_key {
                        if let Some(hit) = sem_lookup(shared, key, epochs) {
                            return Some(hit);
                        }
                    }
                    let options = QueryOptions {
                        config: QueryConfig {
                            max_rows: shared.config.max_rows,
                        },
                        strategy: shared.config.strategy,
                        default_corpus: corpus.clone(),
                    };
                    let response = match run_query_opts(&**db, src, &options) {
                        Ok(QueryOutput::Answers(a)) => Response::Answers(a),
                        Ok(QueryOutput::Rows(r)) => Response::Rows(r),
                        Err(e) => Response::Error(e.to_string()),
                    };
                    if let (Some((key, resolved)), false) =
                        (sem_key, matches!(response, Response::Error(_)))
                    {
                        sem_insert(shared, key, resolved, response.clone(), epochs);
                    }
                    Some(response)
                }
                other => Some(execute(shared, db, cache, scratch, other)),
            }
        }))
        .unwrap_or_else(|_| {
            scratch.inputs.clear();
            Some(Response::Error(
                "internal error: query evaluation panicked".to_owned(),
            ))
        });
        if response.is_some() {
            // Answered inline (or panicked): the request is over, seal
            // the trace. Pending meets carried theirs into `pending`.
            finish_request_trace();
        }
        responses[ji] = response;
    }

    // Phase 2: grouped meet evaluation, one batched call per engine.
    let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
    for (pi, p) in pending.iter().enumerate() {
        let key = Arc::as_ptr(&p.engine) as *const () as usize;
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, members)) => members.push(pi),
            None => groups.push((key, vec![pi])),
        }
    }
    for (_, members) in &groups {
        let engine = Arc::clone(&pending[members[0]].engine);
        // Resume the first traced rider across the grouped call so the
        // engine-side spans (plan decisions, scatter/gather, the shared
        // sweep) record live into one trace; the other riders get the
        // measured wall time stitched in as a closed `batch_eval` span.
        let lead = members
            .iter()
            .copied()
            .find(|&pi| pending[pi].trace.is_some());
        if let Some(pi) = lead {
            if let Some(trace) = pending[pi].trace.take() {
                ncq_obs::trace::resume(trace);
            }
        }
        let eval_started = Instant::now();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let queries: Vec<BatchQuery<'_>> = members
                .iter()
                .map(|&pi| {
                    let p = &pending[pi];
                    BatchQuery::new(
                        p.inputs.iter().map(Arc::as_ref).collect(),
                        p.options.clone(),
                    )
                })
                .collect();
            engine.try_meet_hit_groups_batch(&queries)
        }));
        let eval_ns = eval_started.elapsed().as_nanos() as u64;
        if let Some(pi) = lead {
            // On the panic path any open spans were already closed by
            // their guards during unwinding; the trace is still whole.
            pending[pi].trace = ncq_obs::trace::suspend();
        }
        match outcome {
            Ok(Ok(all)) => {
                for (&pi, meets) in members.iter().zip(all) {
                    if let Some(trace) = pending[pi].trace.take() {
                        ncq_obs::trace::resume(trace);
                        if lead != Some(pi) {
                            ncq_obs::trace::record_closed(
                                "batch_eval",
                                eval_ns,
                                vec![("group", members.len().to_string())],
                            );
                        }
                    }
                    let response = {
                        let _serialize = ncq_obs::trace::span("serialize");
                        Response::Answers(AnswerSet::from_meets(engine.store(), meets))
                    };
                    let p = &pending[pi];
                    if let Some(key) = &p.sem_key {
                        sem_insert(
                            shared,
                            key.clone(),
                            p.corpus.clone(),
                            response.clone(),
                            epochs,
                        );
                    }
                    responses[p.job] = Some(response);
                    finish_request_trace();
                }
            }
            Ok(Err(e)) => {
                for &pi in members {
                    if let Some(trace) = pending[pi].trace.take() {
                        ncq_obs::trace::resume(trace);
                        ncq_obs::trace::event("error", e.to_string());
                    }
                    responses[pending[pi].job] = Some(Response::Error(e.to_string()));
                    finish_request_trace();
                }
            }
            Err(_) => {
                for &pi in members {
                    if let Some(trace) = pending[pi].trace.take() {
                        ncq_obs::trace::resume(trace);
                        ncq_obs::trace::event("error", "evaluation panicked".to_owned());
                    }
                    responses[pending[pi].job] = Some(Response::Error(
                        "internal error: query evaluation panicked".to_owned(),
                    ));
                    finish_request_trace();
                }
            }
        }
    }

    for (job, response) in batch.into_iter().zip(responses) {
        let response = response
            .unwrap_or_else(|| Response::Error("internal error: unanswered job".to_owned()));
        shared.stats.served.fetch_add(1, Relaxed);
        // A dropped receiver just means the client stopped waiting.
        let _ = job.reply.send(response);
    }
}

/// Semantic-cache lookup with counter upkeep. `None` counts a miss.
fn sem_lookup(shared: &Shared, key: &str, epochs: &SemEpochs) -> Option<Response> {
    let mut evicted = 0;
    let hit = shared
        .sem
        .lock()
        .expect("sem cache lock")
        .lookup(key, epochs, &mut evicted);
    shared.stats.sem_evictions.fetch_add(evicted, Relaxed);
    match &hit {
        Some(_) => {
            ncq_obs::trace::event("sem_cache", "hit".to_owned());
            shared.stats.sem_hits.fetch_add(1, Relaxed)
        }
        None => {
            ncq_obs::trace::event("sem_cache", "miss".to_owned());
            shared.stats.sem_misses.fetch_add(1, Relaxed)
        }
    };
    hit
}

/// Semantic-cache insert with eviction accounting.
fn sem_insert(
    shared: &Shared,
    key: String,
    corpus: String,
    response: Response,
    epochs: &SemEpochs,
) {
    let evicted = shared
        .sem
        .lock()
        .expect("sem cache lock")
        .insert(key, corpus, response, epochs);
    shared.stats.sem_evictions.fetch_add(evicted, Relaxed);
}

/// Blocks for work, then drains up to `batch_max` jobs, waiting up to
/// `batch_window` for stragglers to share the batch's term decodes.
/// Returns `None` when shut down and fully drained.
fn next_batch(shared: &Shared) -> Option<Vec<Job>> {
    let batch_max = shared.config.batch_max.max(1);
    let mut state = shared.state.lock().expect("queue lock");
    while state.queue.is_empty() {
        if state.shutdown {
            return None;
        }
        state = shared.work.wait(state).expect("queue lock");
    }
    let mut batch = Vec::with_capacity(batch_max.min(state.queue.len()));
    while batch.len() < batch_max {
        match state.queue.pop_front() {
            Some(job) => batch.push(job),
            None => break,
        }
    }
    shared.space.notify_all();

    if batch.len() < batch_max && !state.shutdown && !shared.config.batch_window.is_zero() {
        let deadline = Instant::now() + shared.config.batch_window;
        loop {
            let now = Instant::now();
            if now >= deadline || batch.len() >= batch_max || state.shutdown {
                break;
            }
            let (guard, timeout) = shared
                .work
                .wait_timeout(state, deadline - now)
                .expect("queue lock");
            state = guard;
            let mut drained = false;
            while batch.len() < batch_max {
                match state.queue.pop_front() {
                    Some(job) => {
                        batch.push(job);
                        drained = true;
                    }
                    None => break,
                }
            }
            if drained {
                shared.space.notify_all();
            }
            if timeout.timed_out() {
                break;
            }
        }
    }
    drop(state);
    Some(batch)
}

/// Resolve a request's corpus routing: `(engine to evaluate on, stat
/// key to count under)`. `None` routing on a forest resolves to the
/// default corpus *name* for accounting while evaluating through the
/// forest backend itself (whose trait surface already routes to the
/// default corpus); on a single-document backend there is no corpus to
/// count. An explicit name resolves through [`MeetBackend::corpus`].
fn resolve_corpus(
    db: &Arc<dyn MeetBackend>,
    corpus: &Option<String>,
) -> Result<(Arc<dyn MeetBackend>, Option<String>), String> {
    match corpus.as_deref() {
        None => Ok((Arc::clone(db), db.default_corpus())),
        Some(name) => match db.corpus(name) {
            Some(target) => Ok((target, Some(name.to_owned()))),
            None => Err(format!("unknown corpus {name:?}")),
        },
    }
}

fn execute(
    shared: &Shared,
    db: &Arc<dyn MeetBackend>,
    cache: &mut TermCache,
    scratch: &mut Scratch,
    request: &Request,
) -> Response {
    match request {
        Request::MeetTerms {
            terms,
            within,
            limit,
            corpus,
        } => {
            let options = MeetOptions {
                max_distance: *within,
                limit: *limit,
                strategy: shared.config.strategy,
                ..MeetOptions::default()
            };
            if corpus.as_deref() == Some(ALL_CORPORA) {
                // Fan out across the whole catalog: per-corpus answers
                // concatenate in catalog order, corpus-tagged. Decodes
                // go through the per-corpus engines (and the tagged
                // term cache), same as single-corpus routing. A corpus
                // whose replica set is unavailable degrades to a typed
                // partial marker instead of failing every healthy
                // corpus's answer with it.
                let names = db.corpus_names();
                if names.is_empty() {
                    return Response::Error(
                        "this deployment serves no corpora (single-document backend)".to_owned(),
                    );
                }
                let mut all = AnswerSet::default();
                for name in &names {
                    let Some(target) = db.corpus(name) else {
                        return Response::Error(format!("unknown corpus {name:?}"));
                    };
                    shared.stats.note_corpus(name);
                    let outcome = (|| -> Result<AnswerSet, BackendError> {
                        scratch.inputs.clear();
                        for term in terms {
                            scratch
                                .inputs
                                .push(cache.get_or_decode(shared, &target, name, term)?);
                        }
                        let input_refs: Vec<&HitSet> =
                            scratch.inputs.iter().map(Arc::as_ref).collect();
                        ncq_core::catalog::try_corpus_tagged_meet(
                            name,
                            &*target,
                            &input_refs,
                            &options,
                        )
                    })();
                    match outcome {
                        Ok(a) => all.results.extend(a.results),
                        Err(e) => {
                            shared.stats.partial_answers.fetch_add(1, Relaxed);
                            all.push_partial(name, e.to_string());
                        }
                    }
                }
                return Response::Answers(all);
            }
            let (target, stat_name) = match resolve_corpus(db, corpus) {
                Ok(pair) => pair,
                Err(msg) => return Response::Error(msg),
            };
            if let Some(name) = &stat_name {
                shared.stats.note_corpus(name);
            }
            let cache_corpus = stat_name.as_deref().unwrap_or("");
            scratch.inputs.clear();
            for term in terms {
                match cache.get_or_decode(shared, &target, cache_corpus, term) {
                    Ok(hits) => scratch.inputs.push(hits),
                    Err(e) => return Response::Error(e.to_string()),
                }
            }
            let input_refs: Vec<&HitSet> = scratch.inputs.iter().map(Arc::as_ref).collect();
            match target.try_meet_hit_groups(&input_refs, &options) {
                Ok(meets) => Response::Answers(AnswerSet::from_meets(target.store(), meets)),
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::Sql { src, corpus } => {
            if corpus.as_deref() == Some(ALL_CORPORA) {
                return Response::Error(
                    "SQL evaluates against one corpus; USE a concrete corpus name".to_owned(),
                );
            }
            // The evaluator resolves `from corpus(name)` itself; the
            // session corpus only fills the default. Accounting follows
            // the session/default routing (the service layer cannot see
            // a corpus named inside the query text without parsing it
            // twice).
            if let Some(name) = corpus
                .as_deref()
                .map(str::to_owned)
                .or_else(|| db.default_corpus())
            {
                shared.stats.note_corpus(&name);
            }
            let options = QueryOptions {
                config: QueryConfig {
                    max_rows: shared.config.max_rows,
                },
                strategy: shared.config.strategy,
                default_corpus: corpus.clone(),
            };
            match run_query_opts(&**db, src, &options) {
                Ok(QueryOutput::Answers(a)) => Response::Answers(a),
                Ok(QueryOutput::Rows(r)) => Response::Rows(r),
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::Search { term, corpus } => {
            if corpus.as_deref() == Some(ALL_CORPORA) {
                let names = db.corpus_names();
                if names.is_empty() {
                    return Response::Error(
                        "this deployment serves no corpora (single-document backend)".to_owned(),
                    );
                }
                let mut total = 0usize;
                for name in &names {
                    let Some(target) = db.corpus(name) else {
                        return Response::Error(format!("unknown corpus {name:?}"));
                    };
                    shared.stats.note_corpus(name);
                    // A count cannot carry a partial marker, and a
                    // silently short total is a wrong answer — so an
                    // unavailable corpus fails the whole fan-out count,
                    // typed with the corpus it died on.
                    match cache.get_or_decode(shared, &target, name, term) {
                        Ok(hits) => total += hits.len(),
                        Err(e) => {
                            return Response::Error(format!("corpus {name:?}: {e}"));
                        }
                    }
                }
                return Response::Count(total);
            }
            let (target, stat_name) = match resolve_corpus(db, corpus) {
                Ok(pair) => pair,
                Err(msg) => return Response::Error(msg),
            };
            if let Some(name) = &stat_name {
                shared.stats.note_corpus(name);
            }
            let cache_corpus = stat_name.as_deref().unwrap_or("");
            match cache.get_or_decode(shared, &target, cache_corpus, term) {
                Ok(hits) => Response::Count(hits.len()),
                Err(e) => Response::Error(e.to_string()),
            }
        }
        Request::Corpora => Response::Corpora {
            names: db.corpus_names(),
            default: db.default_corpus(),
        },
        Request::SnapshotSave { path } => match resolve_snapshot_path(&shared.config, path) {
            Ok(full) => match db.save_snapshot(&full) {
                Ok(()) => Response::Info(format!(
                    "snapshot saved: {} objects -> {}",
                    db.store().node_count(),
                    full.display()
                )),
                Err(e) => Response::Error(e.to_string()),
            },
            Err(e) => Response::Error(e.to_string()),
        },
        Request::SnapshotLoad { path, corpus } => {
            let full = match resolve_snapshot_path(&shared.config, path) {
                Ok(full) => full,
                Err(e) => return Response::Error(e.to_string()),
            };
            match corpus {
                None => {
                    // Whole-backend reload: the fresh engine is built
                    // entirely from the file (only its *shape* comes
                    // from the current backend), so building outside
                    // the write lock is safe — concurrent whole-backend
                    // loads are last-write-wins by design, which
                    // matches the verb's "replace everything" meaning.
                    let fresh = match db.open_snapshot_like(&full) {
                        Ok(fresh) => fresh,
                        Err(e) => return Response::Error(e.to_string()),
                    };
                    let objects = fresh.store().node_count();
                    {
                        // Bump the generation while still holding the
                        // write lock: readers take (backend,
                        // generation) under the read lock, so they can
                        // never pair the new engine with the old
                        // generation (stale term-cache decodes) or
                        // vice versa.
                        let mut guard = shared.db.write().expect("backend lock");
                        *guard = fresh;
                        shared.generation.fetch_add(1, Relaxed);
                        // Full swap: every semantic-cache entry is for
                        // the old backend now (epoch bump under the
                        // write lock, like the generation).
                        shared.epochs.lock().expect("epoch lock").full += 1;
                    }
                    Response::Info(format!(
                        "snapshot loaded: {objects} objects <- {} (takes effect for subsequent batches)",
                        full.display()
                    ))
                }
                Some(name) => {
                    // Per-corpus splice. The replacement forest clones
                    // the *current* catalog (not this batch's possibly
                    // stale backend — a sibling corpus may have been
                    // swapped since the batch formed), and the
                    // expensive snapshot load runs outside the write
                    // lock: if another swap lands in between (the
                    // generation moved), rebuild against the new
                    // current forest instead of silently discarding
                    // that swap. Retries are rare — swaps are operator
                    // actions — and each one observes a strictly newer
                    // generation.
                    loop {
                        let (current, observed) = shared.backend();
                        let fresh = match current.reload_corpus(name, &full) {
                            Ok(fresh) => fresh,
                            Err(e) => return Response::Error(format!("corpus {name:?}: {e}")),
                        };
                        let mut guard = shared.db.write().expect("backend lock");
                        if shared.generation.load(Relaxed) != observed {
                            continue; // lost a race: splice into the newer forest
                        }
                        *guard = fresh;
                        shared.generation.fetch_add(1, Relaxed);
                        // Per-corpus splice invalidates only this
                        // corpus's semantic-cache entries; siblings
                        // keep serving cached results.
                        *shared
                            .epochs
                            .lock()
                            .expect("epoch lock")
                            .per_corpus
                            .entry(name.clone())
                            .or_insert(0) += 1;
                        drop(guard);
                        return Response::Info(format!(
                            "corpus {name:?} reloaded <- {} (takes effect for subsequent batches)",
                            full.display()
                        ));
                    }
                }
            }
        }
    }
}

/// Typed failures of the snapshot verbs' path gate — returned in-band
/// so a network client sees a protocol error, never backend io text
/// for a name that should have been refused up front.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotPathError {
    /// [`ServerConfig::snapshot_dir`] is not set.
    Disabled,
    /// The argument is not a single bare file name (separators, `..`,
    /// absolute paths, or nothing at all).
    NotBare {
        /// The offending argument.
        requested: String,
    },
    /// The file name is empty or carries whitespace, NUL or other
    /// control characters.
    BadName {
        /// The offending argument.
        requested: String,
    },
}

impl fmt::Display for SnapshotPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotPathError::Disabled => write!(
                f,
                "snapshot verbs are disabled (ServerConfig::snapshot_dir is not set)"
            ),
            SnapshotPathError::NotBare { requested } => write!(
                f,
                "snapshot name {requested:?} must be a bare file name inside the snapshot dir"
            ),
            SnapshotPathError::BadName { requested } => write!(
                f,
                "snapshot name {requested:?} must be non-empty without whitespace or control characters"
            ),
        }
    }
}

impl std::error::Error for SnapshotPathError {}

/// Resolve a snapshot verb's file argument against the configured
/// snapshot directory. The verbs are network-reachable, so this is the
/// security gate: disabled unless [`ServerConfig::snapshot_dir`] is
/// set, and the argument must be a single bare file name (no path
/// separators, no `..`, nothing absolute, no embedded whitespace, NUL
/// or control characters) so a client can never direct writes or reads
/// outside the operator-chosen directory — and a malformed name is a
/// typed [`SnapshotPathError`] instead of whatever the filesystem
/// would have said.
fn resolve_snapshot_path(
    config: &ServerConfig,
    requested: &Path,
) -> Result<PathBuf, SnapshotPathError> {
    let Some(dir) = &config.snapshot_dir else {
        return Err(SnapshotPathError::Disabled);
    };
    let mut components = requested.components();
    let name = match (components.next(), components.next()) {
        (Some(std::path::Component::Normal(name)), None) => name,
        _ => {
            return Err(SnapshotPathError::NotBare {
                requested: requested.display().to_string(),
            })
        }
    };
    match name.to_str() {
        Some(utf8)
            if !utf8.is_empty() && !utf8.chars().any(|c| c.is_whitespace() || c.is_control()) =>
        {
            Ok(dir.join(name))
        }
        _ => Err(SnapshotPathError::BadName {
            requested: requested.display().to_string(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1: &str = r#"
<bibliography>
  <institute>
    <article key="BB99">
      <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
      <title>How to Hack</title>
      <year>1999</year>
    </article>
    <article key="BK99">
      <author>Bob Byte</author>
      <title>Hacking &amp; RSI</title>
      <year>1999</year>
    </article>
  </institute>
</bibliography>"#;

    fn server(config: ServerConfig) -> Server {
        let db = Arc::new(Database::from_xml_str(FIGURE1).unwrap());
        Server::start(db, config)
    }

    #[test]
    fn meet_terms_round_trip() {
        let s = server(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        let answers = s.client().meet_terms(["Bit", "1999"]).unwrap();
        assert_eq!(answers.tags(), vec!["article"]);
        let stats = s.shutdown();
        assert_eq!(stats.served, 1);
        assert_eq!(stats.term_decodes, 2);
    }

    #[test]
    fn sql_and_search_round_trip() {
        let s = server(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let client = s.client();
        match client
            .sql(
                "select meet(a, b) from bibliography/% as a, bibliography/% as b \
                  where a contains 'Ben' and b contains 'Bit'",
            )
            .unwrap()
        {
            Response::Answers(a) => assert_eq!(a.tags(), vec!["author"]),
            other => panic!("unexpected {other:?}"),
        }
        match client
            .sql("select t from bibliography/institute as t")
            .unwrap()
        {
            Response::Rows(r) => assert_eq!(r.rows.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        match client.request(Request::search("1999")).unwrap() {
            Response::Count(n) => assert_eq!(n, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn snapshot_save_load_hot_swaps_the_backend() {
        let dir = std::env::temp_dir().join("ncq-server-snapshot-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("figure1.ncq");

        let s = server(ServerConfig {
            workers: 2,
            snapshot_dir: Some(dir.clone()),
            ..ServerConfig::default()
        });
        let client = s.client();
        match client
            .request(Request::snapshot_save("figure1.ncq"))
            .unwrap()
        {
            Response::Info(msg) => assert!(msg.contains("snapshot saved"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }

        // Cold-start an independent server straight from the file.
        let cold = Server::open_snapshot(
            &path,
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            cold.client().meet_terms(["Bit", "1999"]).unwrap().tags(),
            vec!["article"]
        );

        // Hot-swap the running server onto the snapshot; the service
        // keeps answering (same corpus, so same answers) and term
        // caches refresh rather than serving stale decodes.
        assert_eq!(client.meet_terms(["Bit", "1999"]).unwrap().len(), 1);
        match client
            .request(Request::snapshot_load("figure1.ncq"))
            .unwrap()
        {
            Response::Info(msg) => assert!(msg.contains("snapshot loaded"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            client.meet_terms(["Bit", "1999"]).unwrap().tags(),
            vec!["article"]
        );

        // A load failure is an in-band error; service stays up.
        match client
            .request(Request::snapshot_load("absent.ncq"))
            .unwrap()
        {
            Response::Error(msg) => assert!(msg.contains("io error"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(client.meet_terms(["Bob", "Byte"]).unwrap().len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn snapshot_verbs_are_gated_by_the_configured_directory() {
        // Default config: verbs disabled outright.
        let s = server(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        match s.client().request(Request::snapshot_save("x.ncq")).unwrap() {
            Response::Error(msg) => assert!(msg.contains("disabled"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }

        // Configured dir: traversal and absolute paths are refused.
        let dir = std::env::temp_dir().join("ncq-server-snapshot-gate");
        std::fs::create_dir_all(&dir).unwrap();
        let s = server(ServerConfig {
            workers: 1,
            snapshot_dir: Some(dir),
            ..ServerConfig::default()
        });
        let client = s.client();
        for bad in ["../escape.ncq", "/etc/passwd", "nested/dir.ncq", ".."] {
            match client.request(Request::snapshot_save(bad)).unwrap() {
                Response::Error(msg) => assert!(msg.contains("bare file name"), "{bad}: {msg}"),
                other => panic!("{bad}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn query_errors_are_responses_not_crashes() {
        let s = server(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let client = s.client();
        match client.sql("select nonsense garbage !!").unwrap() {
            Response::Error(msg) => assert!(!msg.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        // The worker survives and serves the next query.
        assert_eq!(
            client.meet_terms(["Bob", "Byte"]).unwrap().tags(),
            vec!["cdata"]
        );
    }

    #[test]
    fn repeated_terms_share_decodes() {
        // Semantic cache off: every repeat re-evaluates, sharing only
        // the term decodes.
        let s = server(ServerConfig {
            workers: 1,
            sem_cache_capacity: 0,
            ..ServerConfig::default()
        });
        let client = s.client();
        for _ in 0..5 {
            client.meet_terms(["Bit", "1999"]).unwrap();
        }
        let stats = s.shutdown();
        assert_eq!(stats.served, 5);
        assert_eq!(stats.term_decodes, 2, "one decode per distinct term");
        assert_eq!(stats.term_cache_hits, 8);
        assert_eq!((stats.sem_hits, stats.sem_misses), (0, 0), "cache off");
    }

    #[test]
    fn repeated_queries_hit_the_semantic_cache() {
        // Semantic cache on (the default): repeats skip evaluation —
        // and the term cache — entirely.
        let s = server(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let client = s.client();
        let first = client.meet_terms(["Bit", "1999"]).unwrap();
        for _ in 0..4 {
            assert_eq!(client.meet_terms(["Bit", "1999"]).unwrap(), first);
        }
        // SQL rides the same cache, keyed on the canonical parse: the
        // odd spacing below normalizes to the same entry.
        let sql = "select meet(a, b) from bibliography/% as a, bibliography/% as b \
                   where a contains 'Bit' and b contains '1999'";
        let spaced = sql.replace("select", "SELECT  ");
        let a = client.sql(sql).unwrap();
        assert_eq!(client.sql(&spaced).unwrap(), a);
        let stats = s.shutdown();
        assert_eq!(stats.served, 7);
        assert_eq!(stats.term_decodes, 2, "decoded once, then sem hits");
        assert_eq!(stats.sem_misses, 2, "one per distinct query");
        assert_eq!(stats.sem_hits, 5);
        assert_eq!(
            stats.sem_hits + stats.sem_misses,
            7,
            "counters reconcile with cacheable queries served"
        );
    }

    #[test]
    fn limit_bounds_meet_terms_to_the_ranked_prefix() {
        // Hits spread over disjoint subtrees so the meet produces one
        // ranked answer per institute.
        let xml: String = (0..4)
            .map(|i| {
                format!(
                    "<institute><article><author>Bit {i}</author>\
                     <year>1999</year></article></institute>"
                )
            })
            .collect();
        let db = Arc::new(
            Database::from_xml_str(&format!("<bibliography>{xml}</bibliography>")).unwrap(),
        );
        let s = Server::start(
            db,
            ServerConfig {
                workers: 1,
                ..ServerConfig::default()
            },
        );
        let client = s.client();
        let full = client.meet_terms(["Bit", "1999"]).unwrap();
        assert!(full.len() >= 2, "need a multi-answer query");
        for k in 1..=full.len() {
            let got = match client
                .request(Request::MeetTerms {
                    terms: vec!["Bit".into(), "1999".into()],
                    within: None,
                    limit: Some(k),
                    corpus: None,
                })
                .unwrap()
            {
                Response::Answers(a) => a,
                other => panic!("unexpected {other:?}"),
            };
            assert_eq!(got.results, full.results[..k], "k = {k}");
        }
    }

    #[test]
    fn shutdown_refuses_new_requests() {
        let s = server(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let client = s.client();
        s.shutdown();
        assert_eq!(
            client.request(Request::search("x")),
            Err(ServerError::Closed)
        );
    }

    #[test]
    fn try_request_reports_saturation() {
        // No free worker slots: one worker, capacity 1, and the queue
        // pre-loaded while the worker is held busy by a slow batch
        // window. Simplest deterministic variant: don't start workers at
        // all — capacity is exceeded by the second unserved submit.
        let db: Arc<dyn MeetBackend> = Arc::new(Database::from_xml_str(FIGURE1).unwrap());
        let shared = Arc::new(Shared {
            db: RwLock::new(db),
            generation: AtomicUsize::new(0),
            epochs: Mutex::new(SemEpochs::default()),
            sem: Mutex::new(SemCache::new(0)),
            config: ServerConfig {
                queue_capacity: 1,
                ..ServerConfig::default()
            },
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
            space: Condvar::new(),
            stats: Counters::default(),
        });
        let client = Client {
            shared: Arc::clone(&shared),
        };
        let first = client.submit(Request::search("x"), false, 1);
        assert!(first.is_ok());
        let second = client.submit(Request::search("y"), false, 2);
        assert!(matches!(second, Err(ServerError::Saturated)));
        // Shedding is counted, and the rate reflects refused admissions.
        assert_eq!(client.stats().shed, 1);
        assert_eq!(client.stats().shed_rate(), 1.0);
    }

    #[test]
    fn shed_rate_is_zero_without_pressure() {
        let s = server(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let client = s.client();
        client.meet_terms(["Bit", "1999"]).unwrap();
        let stats = s.shutdown();
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.shed_rate(), 0.0);
        assert_eq!(ServerStats::default().shed_rate(), 0.0);
    }

    #[test]
    fn error_displays_are_informative() {
        for (e, needle) in [
            (ServerError::Closed, "shut down"),
            (ServerError::Saturated, "full"),
            (ServerError::Disconnected, "dropped"),
            (ServerError::Query("boom".into()), "boom"),
        ] {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }
}
