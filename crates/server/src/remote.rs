//! The framed engine listener: serve a [`MeetBackend`] to remote
//! coordinators.
//!
//! The line protocol ([`crate::protocol::serve_lines`]) is the *user*
//! transport; this module is the *engine* transport — the serving side
//! of `ncq-core::remote`'s length-delimited request/response framing.
//! A coordinator's `RemoteBackend` connects here and proxies
//! search/meet calls; because this process runs the same engine over
//! the same snapshot, answers are byte-identical to in-process
//! execution.
//!
//! Failure discipline mirrors the rest of the stack: malformed request
//! *bodies* are answered with an in-band error frame (the framing is
//! intact, the session continues); framing-level desync (truncated
//! frame, failed checksum, oversized length) closes the connection —
//! there is no way to know where the next frame starts. Evaluation
//! panics are caught per request and answered in-band, so a poisoned
//! request never takes the engine down. Shutdown is a graceful drain:
//! stop accepting, unblock every session by shutting its socket down,
//! join all session threads.

use ncq_core::remote::{
    decode_request_traced, encode_error_response, encode_response, read_frame_or_eof, write_frame,
    EngineRequest, EngineResponse, WireError, DEFAULT_FRAME_CAP,
};
use ncq_core::MeetBackend;
use ncq_fulltext::HitSet;
use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

/// Engine listener tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Frame payload cap (both directions).
    pub frame_cap: u32,
    /// Optional idle read timeout: a connection that sends nothing for
    /// this long is dropped. `None` (the default) keeps idle pooled
    /// coordinator connections open indefinitely — the coordinator's
    /// failover router reconnects transparently either way.
    pub read_timeout: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            frame_cap: DEFAULT_FRAME_CAP,
            read_timeout: None,
        }
    }
}

/// Tracks every live session socket so shutdown can unblock reads.
#[derive(Default)]
pub(crate) struct SessionRegistry {
    next_id: AtomicUsize,
    streams: Mutex<HashMap<usize, TcpStream>>,
}

impl SessionRegistry {
    pub(crate) fn register(&self, stream: &TcpStream) -> usize {
        let id = self.next_id.fetch_add(1, SeqCst);
        if let Ok(clone) = stream.try_clone() {
            self.streams
                .lock()
                .expect("session registry lock")
                .insert(id, clone);
        }
        id
    }

    pub(crate) fn deregister(&self, id: usize) {
        self.streams
            .lock()
            .expect("session registry lock")
            .remove(&id);
    }

    /// Shut down every registered socket (unblocking blocked reads).
    pub(crate) fn shutdown_all(&self) {
        for stream in self.streams.lock().expect("session registry lock").values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// A running engine listener: accepts coordinator connections and
/// serves the framed engine protocol over `backend`.
///
/// [`RemoteEngine::shutdown`] (or drop) performs a graceful drain —
/// stop accepting, finish the request each session is evaluating,
/// unblock idle sessions, join every thread.
pub struct RemoteEngine {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    sessions: Arc<SessionRegistry>,
    accept_thread: Option<thread::JoinHandle<()>>,
    served: Arc<AtomicU64>,
}

impl RemoteEngine {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and serve `backend` framed.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn MeetBackend>,
        config: EngineConfig,
    ) -> std::io::Result<RemoteEngine> {
        // Force the meet index eagerly so the first remote call does
        // not race the build.
        backend.store().meet_index();
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(SessionRegistry::default());
        let served = Arc::new(AtomicU64::new(0));

        let accept_stop = Arc::clone(&stop);
        let accept_sessions = Arc::clone(&sessions);
        let accept_served = Arc::clone(&served);
        let accept_thread = thread::Builder::new()
            .name("ncq-engine-acceptor".to_owned())
            .spawn(move || {
                let mut handles: Vec<thread::JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if accept_stop.load(SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let backend = Arc::clone(&backend);
                    let config = config.clone();
                    let sessions = Arc::clone(&accept_sessions);
                    let served = Arc::clone(&accept_served);
                    let session = thread::Builder::new()
                        .name("ncq-engine-session".to_owned())
                        .spawn(move || {
                            let id = sessions.register(&stream);
                            let _ = serve_engine_session(&*backend, stream, &config, &served);
                            sessions.deregister(id);
                        });
                    if let Ok(handle) = session {
                        handles.push(handle);
                    }
                    // Reap finished sessions so long-lived engines do
                    // not accumulate handles.
                    handles.retain(|h| !h.is_finished());
                }
                // Graceful drain: unblock every session, then join.
                accept_sessions.shutdown_all();
                for handle in handles {
                    let _ = handle.join();
                }
            })?;

        Ok(RemoteEngine {
            local_addr,
            stop,
            sessions,
            accept_thread: Some(accept_thread),
            served,
        })
    }

    /// The bound address (OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Requests answered so far (all sessions).
    pub fn served(&self) -> u64 {
        self.served.load(SeqCst)
    }

    /// Graceful drain: stop accepting, unblock and join every session.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            self.stop.store(true, SeqCst);
            // Unblock the accept loop with a throwaway connection; the
            // accept thread then drains the sessions.
            let _ = TcpStream::connect(self.local_addr);
            self.sessions.shutdown_all();
            let _ = handle.join();
        }
    }
}

impl Drop for RemoteEngine {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Evaluate one decoded request, panic-isolated.
fn answer(backend: &dyn MeetBackend, request: EngineRequest) -> Vec<u8> {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match request {
        EngineRequest::Ping => encode_response(&EngineResponse::Pong),
        EngineRequest::Search { term } => match backend.try_search(&term) {
            Ok(hits) => encode_response(&EngineResponse::Hits(hits)),
            Err(e) => encode_error_response(&e.to_string()),
        },
        EngineRequest::Meet { inputs, options } => {
            let refs: Vec<&HitSet> = inputs.iter().collect();
            match backend.try_meet_hit_groups(&refs, &options) {
                Ok(meets) => encode_response(&EngineResponse::Meets(meets)),
                Err(e) => encode_error_response(&e.to_string()),
            }
        }
    }));
    result.unwrap_or_else(|_| encode_error_response("internal error: engine evaluation panicked"))
}

/// One coordinator session: frames in, frames out, until EOF or
/// framing desync.
fn serve_engine_session(
    backend: &dyn MeetBackend,
    stream: TcpStream,
    config: &EngineConfig,
    served: &AtomicU64,
) -> Result<(), WireError> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(config.read_timeout)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        let payload = match read_frame_or_eof(&mut reader, config.frame_cap) {
            Ok(Some(payload)) => payload,
            // Clean EOF: the coordinator closed its pooled connection.
            Ok(None) => return Ok(()),
            // Framing-level failure (truncation mid-frame, checksum,
            // oversized length, socket error/timeout): the stream has
            // no recoverable frame boundary — answer nothing and
            // close. The coordinator counts it and fails over.
            Err(e) => return Err(e),
        };
        let response = match decode_request_traced(&payload) {
            // Body-level failure behind intact framing: answer the
            // error in-band and keep serving the session.
            Err(e) => encode_error_response(&e.to_string()),
            Ok((request, trace_id)) => {
                // A propagated trace id starts an engine-side trace
                // under the *coordinator's* id, so the two span trees
                // stitch in the trace ring.
                if let Some(id) = trace_id {
                    ncq_obs::obs().begin_trace(id);
                }
                let response = {
                    let _eval = ncq_obs::trace::span("engine_eval");
                    ncq_obs::trace::annotate(
                        "op",
                        match &request {
                            EngineRequest::Ping => "ping",
                            EngineRequest::Search { .. } => "search",
                            EngineRequest::Meet { .. } => "meet",
                        }
                        .to_owned(),
                    );
                    answer(backend, request)
                };
                if trace_id.is_some() {
                    ncq_obs::obs().finish_trace();
                }
                response
            }
        };
        served.fetch_add(1, SeqCst);
        write_frame(&mut writer, &response, config.frame_cap)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_core::remote::{RemoteBackend, RemoteConfig};
    use ncq_core::{Database, MeetOptions};
    use std::time::Instant;

    const FIG: &str = r#"<bib><article key="BB99"><author>Ben Bit</author>
        <year>1999</year></article></bib>"#;

    fn fast_config() -> RemoteConfig {
        RemoteConfig {
            connect_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(1000),
            write_timeout: Duration::from_millis(1000),
            retry_rounds: 1,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(5),
            down_probe_after: Duration::from_millis(10),
            ..RemoteConfig::default()
        }
    }

    #[test]
    fn engine_round_trip_is_byte_identical_to_in_process() {
        let db = Arc::new(Database::from_xml_str(FIG).unwrap());
        let engine = RemoteEngine::bind(
            "127.0.0.1:0",
            Arc::clone(&db) as Arc<dyn MeetBackend>,
            EngineConfig::default(),
        )
        .unwrap();
        let remote = RemoteBackend::new(
            Database::from_xml_str(FIG).unwrap(),
            &[engine.local_addr().to_string()],
            fast_config(),
        )
        .unwrap();
        let opts = MeetOptions::default();
        let over_wire = remote
            .try_meet_terms_answers(&["Bit", "1999"], &opts)
            .unwrap();
        let local = db.meet_terms(&["Bit", "1999"]).unwrap();
        assert_eq!(over_wire.to_detailed_xml(), local.to_detailed_xml());
        assert!(engine.served() >= 3); // two searches + one meet
        engine.shutdown();
    }

    #[test]
    fn malformed_bodies_answer_in_band_and_keep_the_session() {
        let db = Arc::new(Database::from_xml_str(FIG).unwrap());
        let engine = RemoteEngine::bind(
            "127.0.0.1:0",
            Arc::clone(&db) as Arc<dyn MeetBackend>,
            EngineConfig::default(),
        )
        .unwrap();
        let mut stream = TcpStream::connect(engine.local_addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // A well-framed garbage body: in-band error, session lives.
        write_frame(&mut stream, &[0xFF, 0x01, 0x02], DEFAULT_FRAME_CAP).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let reply = ncq_core::remote::read_frame(&mut reader, DEFAULT_FRAME_CAP).unwrap();
        assert!(matches!(
            ncq_core::remote::decode_response(&reply),
            Err(WireError::Remote(msg)) if msg.contains("opcode")
        ));
        // The same session still answers real requests afterwards.
        let ping = ncq_core::remote::encode_request(&EngineRequest::Ping);
        write_frame(&mut stream, &ping, DEFAULT_FRAME_CAP).unwrap();
        let reply = ncq_core::remote::read_frame(&mut reader, DEFAULT_FRAME_CAP).unwrap();
        assert_eq!(
            ncq_core::remote::decode_response(&reply).unwrap(),
            EngineResponse::Pong
        );
        engine.shutdown();
    }

    #[test]
    fn shutdown_drains_sessions_without_hanging() {
        let db = Arc::new(Database::from_xml_str(FIG).unwrap());
        let engine = RemoteEngine::bind(
            "127.0.0.1:0",
            Arc::clone(&db) as Arc<dyn MeetBackend>,
            EngineConfig::default(),
        )
        .unwrap();
        // An idle session blocked in read: shutdown must unblock it.
        let _idle = TcpStream::connect(engine.local_addr()).unwrap();
        let started = Instant::now();
        engine.shutdown();
        assert!(started.elapsed() < Duration::from_secs(5));
    }
}
