//! # ncq-server — batched concurrent query service
//!
//! The paper closes by positioning the meet operator as "a sensible and
//! valuable add-on to an already existing search engine"; the ROADMAP
//! north star is a service shape — heavy traffic, many concurrent
//! clients. This crate is that server loop around
//! [`ncq_core::Database`]:
//!
//! * **thread-per-core workers** over an `Arc<Database>` (the database
//!   is immutable after load, so workers share it without locks);
//! * a **bounded admission queue**: [`Client::request`] blocks while the
//!   queue is at capacity (back-pressure), [`Client::try_request`]
//!   refuses instead ([`ServerError::Saturated`]) — the admission
//!   policy of a service that would rather shed than stall;
//! * **batched execution**: a worker drains up to
//!   [`ServerConfig::batch_max`] queued requests (waiting up to
//!   [`ServerConfig::batch_window`] for stragglers) and evaluates them
//!   together, sharing full-text posting decodes for terms repeated
//!   across the batch via a per-worker term cache;
//! * **per-worker scratch reuse**: hit-set input buffers and the
//!   response line buffer live in a per-worker arena and are recycled
//!   across queries instead of reallocated;
//! * a **blocking client handle** ([`Client`]) plus a **line protocol**
//!   ([`protocol`]) used by the integration tests and examples;
//! * a **TCP acceptor** ([`net::TcpAcceptor`]): thread-per-connection
//!   `serve_lines` sessions over `std::net::TcpListener` with a hard
//!   connection cap (over-cap connections get one in-band `ERR` line);
//! * an **engine transport** ([`remote::RemoteEngine`]): the serving
//!   side of `ncq-core`'s framed replica protocol — a coordinator's
//!   `RemoteBackend` fails over between several of these, and answers
//!   stay byte-identical to in-process execution;
//! * a **fault-injection harness** ([`chaos::ChaosProxy`]): a
//!   frame-aware proxy driven by a seeded PRNG schedule (refusal,
//!   mid-frame disconnect, checksum corruption, stalls, slow drip)
//!   that the distributed stress suite replays deterministically;
//! * **backend dispatch**: workers hold an `Arc<dyn MeetBackend>`, so
//!   the same pool serves the single-process [`ncq_core::Database`],
//!   the sharded `ncq-shard::ShardedDb`, or a multi-corpus
//!   [`ncq_core::ForestBackend`] ([`Server::start_backend`]);
//! * **forest serving**: [`Server::open_manifest`] boots a catalog of
//!   named corpora from a manifest file; requests route per corpus
//!   (`USE` / `CORPORA` verbs, per-request `corpus` fields), stats
//!   count per corpus, and `SNAPSHOT LOAD <file> INTO <corpus>`
//!   hot-swaps one corpus while sharing every other corpus's engine
//!   with the in-flight batches.
//!
//! ```
//! use ncq_core::Database;
//! use ncq_server::{Request, Response, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let db = Arc::new(Database::from_xml_str(
//!     "<bib><article><author>Ben Bit</author><year>1999</year></article></bib>",
//! ).unwrap());
//! let server = Server::start(db, ServerConfig::default());
//! let client = server.client();
//! let response = client.request(Request::meet_terms(["Bit", "1999"])).unwrap();
//! match response {
//!     Response::Answers(a) => assert_eq!(a.tags(), vec!["article"]),
//!     other => panic!("unexpected {other:?}"),
//! }
//! server.shutdown();
//! ```

pub mod chaos;
pub mod net;
pub mod protocol;
pub mod remote;
pub mod server;

pub use chaos::{ChaosProxy, ChaosSchedule, Fault};
pub use net::{NetConfig, TcpAcceptor};
pub use protocol::serve_lines;
pub use remote::{EngineConfig, RemoteEngine};
pub use server::{
    Client, Request, Response, Server, ServerConfig, ServerError, ServerStats, SnapshotPathError,
    ALL_CORPORA,
};
