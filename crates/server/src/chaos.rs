//! Deterministic fault injection for the framed engine protocol.
//!
//! [`ChaosProxy`] sits between a coordinator's `RemoteBackend` and a
//! real [`crate::remote::RemoteEngine`], forwarding frames verbatim —
//! except when the seeded schedule says otherwise. Faults are drawn
//! from a PRNG seeded at construction — once per accepted connection
//! (where [`Fault::Refuse`] lands) and once per request/response
//! exchange (coordinators pool connections, so a per-connection-only
//! draw would pin one fault for a whole batch). A failing stress run
//! replays *exactly* by rerunning with the same seed: no
//! timing-dependent flakiness, no "sometimes corrupts".
//!
//! The fault menu covers the distinct ways a replica dies in practice:
//!
//! * [`Fault::Refuse`] — the connection is accepted and immediately
//!   closed (the portable stand-in for connection refusal: the
//!   coordinator sees an instant reset before any frame);
//! * [`Fault::Disconnect`] — the response is cut off mid-frame after a
//!   fixed number of bytes (process crash mid-reply);
//! * [`Fault::CorruptFrame`] — one payload byte is flipped without
//!   fixing the checksum (bit-rot in flight; must surface as a *typed*
//!   checksum failure, never a silently wrong answer);
//! * [`Fault::Stall`] — the response is withheld past the client's
//!   read timeout (hung process, dead NIC);
//! * [`Fault::SlowDrip`] — the response arrives in tiny chunks (a
//!   congested but live path; the client must reassemble, not time
//!   out).
//!
//! The proxy is frame-aware (it decodes boundaries with the real
//! codec), so faults land at protocol-meaningful positions instead of
//! random TCP offsets.

use ncq_core::remote::{read_frame_or_eof, DEFAULT_FRAME_CAP};
use ncq_store::snapshot::checksum64;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use crate::remote::SessionRegistry;

/// One injectable failure mode. [`Fault::Refuse`] is drawn at accept
/// time; every other fault applies to one request/response exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Forward everything verbatim (the healthy draw).
    None,
    /// Close the connection immediately on accept.
    Refuse,
    /// Relay only the first `after_bytes` bytes of each framed
    /// response, then close — a crash mid-reply.
    Disconnect { after_bytes: usize },
    /// Flip one response payload byte, leaving the frame checksum
    /// stale — the client must detect it as a typed corruption.
    CorruptFrame,
    /// Withhold the response for this long, then close without
    /// answering — the client's read timeout must fire first.
    Stall(Duration),
    /// Deliver the response in tiny chunks with small pauses — slow
    /// but correct; the client must reassemble the frame.
    SlowDrip,
}

/// A deterministic per-connection fault source.
pub struct ChaosSchedule {
    menu: Vec<Fault>,
    rng: Mutex<StdRng>,
}

impl ChaosSchedule {
    /// Draw uniformly from `menu` with a PRNG seeded by `seed`. The
    /// draw sequence — and therefore the whole run — is a pure
    /// function of `(seed, menu, connection order)`.
    pub fn seeded(seed: u64, menu: Vec<Fault>) -> ChaosSchedule {
        assert!(!menu.is_empty(), "chaos schedule needs at least one fault");
        ChaosSchedule {
            menu,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        }
    }

    /// A schedule that always injects the same fault — the sharpest
    /// tool for targeted tests.
    pub fn always(fault: Fault) -> ChaosSchedule {
        ChaosSchedule::seeded(0, vec![fault])
    }

    fn draw(&self) -> Fault {
        let mut rng = self.rng.lock().expect("chaos rng lock");
        let idx = rng.random_range(0..self.menu.len());
        self.menu[idx].clone()
    }
}

/// A fault-injecting TCP proxy in front of one engine replica.
///
/// Point a `RemoteBackend` endpoint at [`ChaosProxy::local_addr`]; the
/// proxy forwards frames to `upstream`, applying the scheduled fault
/// of each connection to the responses flowing back.
pub struct ChaosProxy {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    sessions: Arc<SessionRegistry>,
    accept_thread: Option<thread::JoinHandle<()>>,
    faults_injected: Arc<AtomicU64>,
    connections: Arc<AtomicU64>,
}

impl ChaosProxy {
    /// Bind an OS-assigned local port proxying to `upstream`.
    pub fn bind(upstream: SocketAddr, schedule: ChaosSchedule) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(SessionRegistry::default());
        let faults_injected = Arc::new(AtomicU64::new(0));
        let connections = Arc::new(AtomicU64::new(0));
        let schedule = Arc::new(schedule);

        let accept_stop = Arc::clone(&stop);
        let accept_sessions = Arc::clone(&sessions);
        let accept_faults = Arc::clone(&faults_injected);
        let accept_connections = Arc::clone(&connections);
        let accept_thread = thread::Builder::new()
            .name("ncq-chaos-acceptor".to_owned())
            .spawn(move || {
                let mut handles: Vec<thread::JoinHandle<()>> = Vec::new();
                for stream in listener.incoming() {
                    if accept_stop.load(SeqCst) {
                        break;
                    }
                    let Ok(client) = stream else { continue };
                    accept_connections.fetch_add(1, SeqCst);
                    // The accept-time draw is where Refuse lands; any
                    // other draw becomes the first exchange's fault and
                    // later exchanges redraw.
                    let first_fault = schedule.draw();
                    let sessions = Arc::clone(&accept_sessions);
                    let faults = Arc::clone(&accept_faults);
                    let schedule = Arc::clone(&schedule);
                    let session = thread::Builder::new()
                        .name("ncq-chaos-session".to_owned())
                        .spawn(move || {
                            if first_fault == Fault::Refuse {
                                faults.fetch_add(1, SeqCst);
                                let _ = client.shutdown(Shutdown::Both);
                                return;
                            }
                            let id = sessions.register(&client);
                            let _ =
                                relay_session(client, upstream, first_fault, &schedule, &faults);
                            sessions.deregister(id);
                        });
                    if let Ok(handle) = session {
                        handles.push(handle);
                    }
                    handles.retain(|h| !h.is_finished());
                }
                accept_sessions.shutdown_all();
                for handle in handles {
                    let _ = handle.join();
                }
            })?;

        Ok(ChaosProxy {
            local_addr,
            stop,
            sessions,
            accept_thread: Some(accept_thread),
            faults_injected,
            connections,
        })
    }

    /// The proxy's client-facing address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Applied fault draws other than [`Fault::None`] — accept-time
    /// refusals plus per-exchange faults.
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected.load(SeqCst)
    }

    /// Total connections accepted.
    pub fn connections(&self) -> u64 {
        self.connections.load(SeqCst)
    }

    /// Stop accepting, sever every relay, join all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            self.stop.store(true, SeqCst);
            let _ = TcpStream::connect(self.local_addr);
            self.sessions.shutdown_all();
            let _ = handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Rebuild the wire bytes of one frame around `payload`.
fn frame_bytes(payload: &[u8]) -> Vec<u8> {
    let mut framed = Vec::with_capacity(12 + payload.len());
    framed.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    framed.extend_from_slice(&checksum64(payload).to_le_bytes());
    framed.extend_from_slice(payload);
    framed
}

/// Forward request frames upstream and response frames back, applying
/// one freshly drawn fault per exchange (the first exchange reuses the
/// accept-time draw). Ends on either side closing or any relay error —
/// the proxy never retries; retrying is the *client's* job.
fn relay_session(
    client: TcpStream,
    upstream: SocketAddr,
    first_fault: Fault,
    schedule: &ChaosSchedule,
    faults: &AtomicU64,
) -> std::io::Result<()> {
    client.set_nodelay(true)?;
    let server = TcpStream::connect(upstream)?;
    server.set_nodelay(true)?;
    let mut client_read = client.try_clone()?;
    let mut client_write = client;
    let mut server_read = server.try_clone()?;
    let mut server_write = server;
    let mut next_fault = Some(first_fault);
    loop {
        // Request: client -> upstream, always verbatim (faults model a
        // sick *replica*, so they land on the response path).
        let request = match read_frame_or_eof(&mut client_read, DEFAULT_FRAME_CAP) {
            Ok(Some(payload)) => payload,
            _ => return Ok(()),
        };
        server_write.write_all(&frame_bytes(&request))?;
        server_write.flush()?;

        // Response: upstream -> client, through this exchange's fault.
        let fault = next_fault.take().unwrap_or_else(|| schedule.draw());
        if fault != Fault::None {
            faults.fetch_add(1, SeqCst);
        }
        let response = match read_frame_or_eof(&mut server_read, DEFAULT_FRAME_CAP) {
            Ok(Some(payload)) => payload,
            _ => return Ok(()),
        };
        let mut framed = frame_bytes(&response);
        match fault {
            Fault::None => {
                client_write.write_all(&framed)?;
                client_write.flush()?;
            }
            // Drawn mid-session, Refuse degenerates to an immediate
            // close: the connection was already accepted.
            Fault::Refuse => {
                let _ = client_write.shutdown(Shutdown::Both);
                return Ok(());
            }
            Fault::Disconnect { after_bytes } => {
                let cut = after_bytes.min(framed.len());
                client_write.write_all(&framed[..cut])?;
                client_write.flush()?;
                let _ = client_write.shutdown(Shutdown::Both);
                return Ok(());
            }
            Fault::CorruptFrame => {
                // Flip a byte in the payload region; the header keeps
                // the pre-flip checksum, so the client's frame reader
                // must reject it.
                let at = 12 + response.len() / 2;
                framed[at] ^= 0xA5;
                client_write.write_all(&framed)?;
                client_write.flush()?;
            }
            Fault::Stall(for_how_long) => {
                thread::sleep(for_how_long);
                let _ = client_write.shutdown(Shutdown::Both);
                return Ok(());
            }
            Fault::SlowDrip => {
                // Small chunks with pauses, bounded so a dripped frame
                // still lands well inside a sane read timeout.
                let chunk = (framed.len() / 40).max(1);
                for piece in framed.chunks(chunk) {
                    client_write.write_all(piece)?;
                    client_write.flush()?;
                    thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remote::{EngineConfig, RemoteEngine};
    use ncq_core::remote::{RemoteBackend, RemoteConfig};
    use ncq_core::{Database, MeetBackend, MeetOptions};

    const FIG: &str = r#"<bib><article key="BB99"><author>Ben Bit</author>
        <year>1999</year></article></bib>"#;

    fn fast_config() -> RemoteConfig {
        RemoteConfig {
            connect_timeout: Duration::from_millis(200),
            read_timeout: Duration::from_millis(400),
            write_timeout: Duration::from_millis(400),
            retry_rounds: 2,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(5),
            down_probe_after: Duration::from_millis(10),
            ..RemoteConfig::default()
        }
    }

    fn engine(db: &Arc<Database>) -> RemoteEngine {
        RemoteEngine::bind(
            "127.0.0.1:0",
            Arc::clone(db) as Arc<dyn MeetBackend>,
            EngineConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        let menu = vec![
            Fault::None,
            Fault::CorruptFrame,
            Fault::SlowDrip,
            Fault::Disconnect { after_bytes: 5 },
        ];
        let a = ChaosSchedule::seeded(42, menu.clone());
        let b = ChaosSchedule::seeded(42, menu);
        let draws_a: Vec<Fault> = (0..32).map(|_| a.draw()).collect();
        let draws_b: Vec<Fault> = (0..32).map(|_| b.draw()).collect();
        assert_eq!(draws_a, draws_b);
        assert!(draws_a.iter().any(|f| *f != draws_a[0]), "menu is sampled");
    }

    #[test]
    fn clean_proxy_is_transparent() {
        let db = Arc::new(Database::from_xml_str(FIG).unwrap());
        let engine = engine(&db);
        let proxy =
            ChaosProxy::bind(engine.local_addr(), ChaosSchedule::always(Fault::None)).unwrap();
        let remote = RemoteBackend::new(
            Database::from_xml_str(FIG).unwrap(),
            &[proxy.local_addr().to_string()],
            fast_config(),
        )
        .unwrap();
        let opts = MeetOptions::default();
        let over_proxy = remote
            .try_meet_terms_answers(&["Bit", "1999"], &opts)
            .unwrap();
        assert_eq!(
            over_proxy.to_detailed_xml(),
            db.meet_terms(&["Bit", "1999"]).unwrap().to_detailed_xml()
        );
        assert_eq!(proxy.faults_injected(), 0);
        proxy.shutdown();
        engine.shutdown();
    }

    #[test]
    fn corrupt_frames_surface_as_typed_failures_not_wrong_answers() {
        let db = Arc::new(Database::from_xml_str(FIG).unwrap());
        let engine = engine(&db);
        let proxy = ChaosProxy::bind(
            engine.local_addr(),
            ChaosSchedule::always(Fault::CorruptFrame),
        )
        .unwrap();
        // The corrupt-only replica is the *only* endpoint: every round
        // fails with a typed error; nothing garbled ever decodes.
        let remote = RemoteBackend::new(
            Database::from_xml_str(FIG).unwrap(),
            &[proxy.local_addr().to_string()],
            fast_config(),
        )
        .unwrap();
        let err = remote.try_search("Bit").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("unavailable"), "typed unavailable: {msg}");
        assert!(proxy.faults_injected() > 0);
        proxy.shutdown();
        engine.shutdown();
    }

    #[test]
    fn slow_drip_is_survivable() {
        let db = Arc::new(Database::from_xml_str(FIG).unwrap());
        let engine = engine(&db);
        let proxy =
            ChaosProxy::bind(engine.local_addr(), ChaosSchedule::always(Fault::SlowDrip)).unwrap();
        let remote = RemoteBackend::new(
            Database::from_xml_str(FIG).unwrap(),
            &[proxy.local_addr().to_string()],
            fast_config(),
        )
        .unwrap();
        let hits = remote.try_search("Bit").unwrap();
        assert_eq!(hits, db.search("Bit"));
        proxy.shutdown();
        engine.shutdown();
    }
}
