//! Sharding equivalence property suite: for random trees and random K,
//! [`ShardedDb`] answers are identical to [`Database`] answers across
//! `meet2`, `meet_sets` and `meet_multi` — document order included —
//! plus full-text search and `AnswerSet` XML byte equality.
//!
//! Seeded loops over a deterministic PRNG stand in for proptest (the
//! offline build cannot fetch it); failures print the seed.

use ncq_core::{Database, MeetOptions, MeetStrategy, PathFilter};
use ncq_fulltext::HitSet;
use ncq_shard::ShardedDb;
use ncq_store::Oid;
use ncq_xml::Document;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random tree with text leaves: node `i + 1` hangs under a random
/// earlier node; some nodes carry cdata from a small token pool so
/// full-text search and posting restriction are exercised.
fn random_tree(rng: &mut StdRng) -> Document {
    const TAGS: [&str; 5] = ["a", "b", "c", "d", "e"];
    const WORDS: [&str; 6] = ["alpha", "beta", "gamma", "delta", "twin peaks", "omega"];
    let mut doc = Document::new("root");
    let mut nodes = vec![doc.root()];
    let n = rng.random_range(1usize..150);
    for i in 0..n {
        let parent = nodes[rng.random_range(0..nodes.len())];
        let node = doc.add_element(parent, TAGS[i % TAGS.len()]);
        if rng.random_range(0..3usize) == 0 {
            let w1 = WORDS[rng.random_range(0..WORDS.len())];
            let w2 = WORDS[rng.random_range(0..WORDS.len())];
            doc.add_text(node, format!("{w1} {w2}"));
        }
        nodes.push(node);
    }
    doc
}

fn random_oid(rng: &mut StdRng, db: &Database) -> Oid {
    Oid::from_index(rng.random_range(0..db.store().node_count()))
}

/// A random homogeneous OID set: all members share one path.
fn random_homogeneous_set(rng: &mut StdRng, db: &Database) -> Vec<Oid> {
    let store = db.store();
    let anchor = random_oid(rng, db);
    let candidates = store.meet_index().oids_of_path(store.sigma(anchor));
    let len = rng.random_range(1..candidates.len().min(12) + 1);
    let mut set = Vec::with_capacity(len);
    for _ in 0..len {
        set.push(candidates[rng.random_range(0..candidates.len())]);
    }
    set
}

/// A random hit group (arbitrary paths).
fn random_hit_set(rng: &mut StdRng, db: &Database) -> HitSet {
    let store = db.store();
    let len = rng.random_range(1usize..15);
    HitSet::from_pairs((0..len).map(|_| {
        let o = random_oid(rng, db);
        (store.sigma(o), o)
    }))
}

const CASES: u64 = 96;

fn random_k(rng: &mut StdRng) -> usize {
    rng.random_range(2usize..9)
}

#[test]
fn meet2_is_identical() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = Database::from_document(&random_tree(&mut rng));
        let sharded = ShardedDb::new(db.clone(), random_k(&mut rng));
        for _ in 0..20 {
            let a = random_oid(&mut rng, &db);
            let b = random_oid(&mut rng, &db);
            assert_eq!(db.meet_pair(a, b), sharded.meet_pair(a, b), "seed {seed}");
        }
    }
}

#[test]
fn meet_sets_is_identical_including_order() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        let db = Database::from_document(&random_tree(&mut rng));
        let k = random_k(&mut rng);
        let sharded = ShardedDb::new(db.clone(), k);
        for _ in 0..8 {
            let s1 = random_homogeneous_set(&mut rng, &db);
            let s2 = random_homogeneous_set(&mut rng, &db);
            for strategy in [MeetStrategy::Auto, MeetStrategy::Lift, MeetStrategy::Sweep] {
                let single = db.meet_oid_sets_with(&s1, &s2, strategy);
                let shard = sharded.meet_oid_sets_with(&s1, &s2, strategy);
                match (single, shard) {
                    (Ok(a), Ok(b)) => {
                        // The answers — the (meet, round) sequence in
                        // result order — must match exactly. (The
                        // look-up counters are execution-shape
                        // bookkeeping: a scatter counts its own probes.)
                        assert_eq!(a.meets, b.meets, "seed {seed} k {k} {strategy:?}");
                        assert_eq!(a.join_rounds, b.join_rounds, "seed {seed} k {k}");
                    }
                    (a, b) => panic!("seed {seed}: result mismatch {a:?} vs {b:?}"),
                }
            }
        }
    }
}

#[test]
fn meet_multi_is_identical_including_witnesses() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xBEEF00 ^ seed);
        let db = Database::from_document(&random_tree(&mut rng));
        let k = random_k(&mut rng);
        let sharded = ShardedDb::new(db.clone(), k);
        for _ in 0..6 {
            let groups = rng.random_range(1usize..4);
            let inputs: Vec<HitSet> = (0..groups).map(|_| random_hit_set(&mut rng, &db)).collect();
            let max_distance = match rng.random_range(0..3usize) {
                0 => None,
                _ => Some(rng.random_range(0usize..8)),
            };
            let filter = match rng.random_range(0..3usize) {
                0 => PathFilter::exclude_root(db.store()),
                _ => PathFilter::All,
            };
            let limit = match rng.random_range(0..3usize) {
                0 => Some(rng.random_range(1usize..6)),
                _ => None,
            };
            for strategy in [MeetStrategy::Auto, MeetStrategy::Sweep] {
                let options = MeetOptions {
                    max_distance,
                    filter: filter.clone(),
                    strategy,
                    witness_cap: rng.random_range(1usize..5),
                    limit,
                };
                // Full structural equality: nodes, paths, distances,
                // witness counts AND the capped witness samples, in
                // result order.
                assert_eq!(
                    db.meet_hits(&inputs, &options),
                    sharded.meet_hits(&inputs, &options),
                    "seed {seed} k {k} {strategy:?}"
                );
            }
        }
    }
}

#[test]
fn search_and_answer_xml_are_byte_identical() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(0xA11CE ^ seed);
        let db = Database::from_document(&random_tree(&mut rng));
        let k = random_k(&mut rng);
        let sharded = ShardedDb::new(db.clone(), k);
        for term in ["alpha", "beta", "twin peaks", "gamm", "absent", "omega"] {
            assert_eq!(db.search(term), sharded.search(term), "seed {seed} {term}");
        }
        for terms in [
            vec!["alpha", "beta"],
            vec!["gamma", "delta", "omega"],
            vec!["twin peaks", "alpha"],
        ] {
            let a = db.meet_terms(&terms).unwrap();
            let b = sharded.meet_terms(&terms).unwrap();
            assert_eq!(
                a.to_detailed_xml(),
                b.to_detailed_xml(),
                "seed {seed} k {k} {terms:?}"
            );
        }
    }
}

#[test]
fn datagen_corpora_match_at_all_k() {
    use ncq_datagen::{DblpConfig, DblpCorpus, MultimediaConfig, MultimediaCorpus};
    let dblp = DblpCorpus::generate(&DblpConfig {
        papers_per_edition: 6,
        journal_articles_per_year: 2,
        ..DblpConfig::default()
    });
    let mm = MultimediaCorpus::generate(&MultimediaConfig {
        noise_items: 60,
        ..MultimediaConfig::default()
    });
    for doc in [&dblp.document, &mm.document] {
        let db = Database::from_document(doc);
        for k in [1, 2, 4, 8] {
            let sharded = ShardedDb::new(db.clone(), k);
            for terms in [
                vec!["ICDE", "1995"],
                vec!["1990", "1991"],
                vec!["video", "colour"],
                vec!["absent-token", "1999"],
            ] {
                let a = db.meet_terms(&terms).unwrap();
                let b = sharded.meet_terms(&terms).unwrap();
                assert_eq!(a.to_detailed_xml(), b.to_detailed_xml(), "k {k} {terms:?}");
            }
            let icde = db.search("ICDE");
            assert_eq!(icde, sharded.search("ICDE"), "k {k}");
            // Homogeneous sets: the largest relation of each hit set.
            let largest = |h: &HitSet| -> Vec<Oid> {
                h.groups()
                    .iter()
                    .max_by_key(|(_, v)| v.len())
                    .map(|(_, v)| v.clone())
                    .unwrap_or_default()
            };
            let (g1, g2) = (largest(&icde), largest(&db.search("1995")));
            if !g1.is_empty() && !g2.is_empty() {
                let a = db.meet_oid_sets(&g1, &g2).unwrap();
                let b = sharded.meet_oid_sets(&g1, &g2).unwrap();
                assert_eq!(a.meets, b.meets, "k {k}");
            }
        }
    }
}
