//! `ncq-server` workers serving a [`ShardedDb`]: the backend dispatch
//! end of the sharded layer. Responses must match a server over the
//! single database exactly, and concurrent clients must agree.

use ncq_core::Database;
use ncq_datagen::{DblpConfig, DblpCorpus};
use ncq_server::{Request, Response, Server, ServerConfig};
use ncq_shard::ShardedDb;
use std::sync::Arc;

fn dblp() -> Database {
    let corpus = DblpCorpus::generate(&DblpConfig {
        papers_per_edition: 10,
        journal_articles_per_year: 3,
        ..DblpConfig::default()
    });
    Database::from_document(&corpus.document)
}

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        ..ServerConfig::default()
    }
}

#[test]
fn sharded_server_matches_single_server() {
    let db = dblp();
    let single = Server::start(Arc::new(db.clone()), config(2));
    let sharded = Server::start_backend(Arc::new(ShardedDb::new(db, 4)), config(2));

    let requests = [
        Request::meet_terms(["ICDE", "1995"]),
        Request::meet_terms(["1990", "1991", "1992"]),
        Request::search("ICDE"),
        Request::sql(
            "select meet(a, b) from dblp/% as a, dblp/% as b \
                      where a contains 'ICDE' and b contains '1995'",
        ),
        Request::sql("select nonsense !!"),
    ];
    let (c1, c2) = (single.client(), sharded.client());
    for request in &requests {
        let a = c1.request(request.clone()).unwrap();
        let b = c2.request(request.clone()).unwrap();
        assert_eq!(a, b, "{request:?}");
    }
    single.shutdown();
    sharded.shutdown();
}

#[test]
fn concurrent_clients_agree_over_the_sharded_backend() {
    let backend = Arc::new(ShardedDb::new(dblp(), 4));
    let server = Server::start_backend(backend, config(4));
    let reference = match server
        .client()
        .request(Request::meet_terms(["ICDE", "1995"]))
        .unwrap()
    {
        Response::Answers(a) => a,
        other => panic!("unexpected {other:?}"),
    };
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let client = server.client();
            let reference = reference.clone();
            std::thread::spawn(move || {
                for _ in 0..20 {
                    match client
                        .request(Request::meet_terms(["ICDE", "1995"]))
                        .unwrap()
                    {
                        Response::Answers(a) => assert_eq!(a, reference),
                        other => panic!("unexpected {other:?}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = server.shutdown();
    assert_eq!(stats.served, 121);
}
