//! Shard-aware forest loading: a manifest entry with `shards > 1`
//! materializes as a [`ShardedDb`], so the catalog's scatter/gather
//! layer addresses `(corpus, shard)` pairs — the catalog routes a
//! query to one corpus, that corpus's [`crate::PartitionMap`] routes the work
//! to its shards, and the gather roll-up stays the only cross-shard
//! step. Single-shard entries stay plain [`Database`]s (a one-shard
//! `ShardedDb` would only add a delegating facade).
//!
//! This lives in `ncq-shard` (not `ncq-core`) because the core catalog
//! cannot name `ShardedDb` without inverting the crate stack; the
//! opener hook of [`Catalog::open_manifest_with`] exists exactly for
//! this split.

use crate::sharded::ShardedDb;
use ncq_core::{Catalog, CatalogError, Database, ForestBackend, MeetBackend, RemoteConfig};
use std::path::Path;
use std::sync::Arc;

/// Open every corpus of a manifest with its requested shard count:
/// `shards > 1` entries cold-start as [`ShardedDb`] (reusing the
/// snapshot's stored partition cut when the K matches), single-shard
/// entries as plain [`Database`]s. Snapshot files are verified against
/// the manifest's recorded checksums before decoding. Entries that
/// name replica endpoints are served through `ncq-core`'s
/// `RemoteBackend` instead (the endpoint branch lives in
/// `Catalog::open_manifest_remote`, shared with the unsharded loader).
pub fn open_catalog(manifest_path: impl AsRef<Path>) -> Result<Catalog, CatalogError> {
    open_catalog_remote(manifest_path, RemoteConfig::default())
}

/// [`open_catalog`] with an explicit failover-router configuration for
/// endpoint-backed entries (the stress suites tighten the timeouts).
pub fn open_catalog_remote(
    manifest_path: impl AsRef<Path>,
    remote_config: RemoteConfig,
) -> Result<Catalog, CatalogError> {
    Catalog::open_manifest_remote(
        manifest_path,
        |entry, source| {
            if entry.shards > 1 {
                Ok(Arc::new(ShardedDb::from_source(&source, entry.shards)?)
                    as Arc<dyn MeetBackend>)
            } else {
                Ok(Arc::new(Database::decode_from(&source)?) as Arc<dyn MeetBackend>)
            }
        },
        remote_config,
    )
}

/// [`open_catalog`] wrapped as a serving backend — the engine
/// `ncq-server`'s `Server::open_manifest` spins its worker pool over.
pub fn open_forest(manifest_path: impl AsRef<Path>) -> Result<ForestBackend, CatalogError> {
    ForestBackend::new(open_catalog(manifest_path)?)
}

/// [`open_forest`] with an explicit failover-router configuration.
pub fn open_forest_remote(
    manifest_path: impl AsRef<Path>,
    remote_config: RemoteConfig,
) -> Result<ForestBackend, CatalogError> {
    ForestBackend::new(open_catalog_remote(manifest_path, remote_config)?)
}

/// Build a [`crate::PartitionMap`]-backed corpus programmatically (tests and
/// tooling): partition `db` into `k` shards and return it as a
/// catalog-ready engine.
pub fn sharded_corpus(db: impl Into<Arc<Database>>, k: usize) -> Arc<dyn MeetBackend> {
    Arc::new(ShardedDb::new(db, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_core::MeetOptions;
    use ncq_store::manifest::{Manifest, ManifestEntry};

    fn wide_xml(sections: usize, leaves: usize) -> String {
        let mut xml = String::from("<r>");
        for s in 0..sections {
            xml.push_str("<sec>");
            for l in 0..leaves {
                xml.push_str(&format!("<p>text {s} {l}</p>"));
            }
            xml.push_str("</sec>");
        }
        xml.push_str("</r>");
        xml
    }

    #[test]
    fn manifest_shard_counts_route_to_sharded_engines() {
        let dir = std::env::temp_dir().join("ncq-forest-open-test");
        std::fs::create_dir_all(&dir).unwrap();
        let wide = Database::from_xml_str(&wide_xml(12, 6)).unwrap();
        let narrow = Database::from_xml_str("<bib><a>Ben Bit</a><y>1999</y></bib>").unwrap();

        // Save the wide corpus *through the sharded engine* so the
        // snapshot carries a K=4 partition cut to reuse.
        let wide_snap = dir.join("wide.ncq");
        ShardedDb::new(wide.clone(), 4)
            .save_snapshot(&wide_snap)
            .unwrap();
        let narrow_snap = dir.join("narrow.ncq");
        narrow.save_snapshot(&narrow_snap).unwrap();

        let mut manifest = Manifest::new();
        manifest
            .push(ManifestEntry::describe("wide", &wide_snap, 4).unwrap())
            .unwrap();
        manifest
            .push(ManifestEntry::describe("narrow", &narrow_snap, 1).unwrap())
            .unwrap();
        let mpath = dir.join("forest.ncqm");
        manifest.save(&mpath).unwrap();

        let forest = open_forest(&mpath).unwrap();
        assert_eq!(forest.corpus_names(), vec!["wide", "narrow"]);

        // The sharded corpus answers byte-identically to the direct
        // database — scatter/gather addressed through the catalog.
        let opts = MeetOptions::default();
        let via_forest = forest
            .corpus("wide")
            .unwrap()
            .meet_terms_answers(&["text", "3"], &opts);
        let direct = wide.meet_terms(&["text", "3"]).unwrap();
        assert_eq!(via_forest.to_detailed_xml(), direct.to_detailed_xml());

        // Per-corpus hot swap keeps the corpus's sharded shape: the
        // reload goes through ShardedDb::open_snapshot_like.
        let swapped = forest.reload_corpus("wide", &wide_snap).unwrap();
        let again = swapped
            .corpus("wide")
            .unwrap()
            .meet_terms_answers(&["text", "3"], &opts);
        assert_eq!(again.to_detailed_xml(), direct.to_detailed_xml());

        for p in [&wide_snap, &narrow_snap, &mpath] {
            std::fs::remove_file(p).ok();
        }
    }
}
