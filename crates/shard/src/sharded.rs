//! The [`ShardedDb`] facade: scatter/gather meet execution over a
//! [`PartitionMap`].
//!
//! # Execution model
//!
//! Every query runs in (up to) three steps:
//!
//! 1. **Scatter** — inputs are routed by ownership: hits inside a
//!    shard's chunk subtrees go to that shard, hits owned by spine
//!    nodes go straight to the gather pool. Per-shard work (posting
//!    lookups, substring scans, plane sweeps) runs in parallel on a
//!    persistent worker pool.
//! 2. **Per-shard meets** — each shard evaluates the meet *below its
//!    spine floor*. A candidate meet on the spine is **deferred** (the
//!    sweep's `Reject` verdict: leave the run alive, never re-propose
//!    locally) because its witness run may span shards. The
//!    [`ncq_core::MeetPlanner`] chooses each shard's executor
//!    independently: a frontier lift that *freezes* elements when they
//!    climb onto the spine, or the indexed plane sweep with the spine
//!    gate.
//! 3. **Gather** — surviving items from every shard (plus the
//!    spine-owned inputs) merge in document order and roll up the
//!    spine, deepest node first: every remaining candidate is a spine
//!    node, so each one's witness run is a single interval probe over
//!    the sorted survivor list. The spine is replicated, so the gather
//!    never touches shard-private state.
//!
//! # Why the answers are identical
//!
//! Sharding exploits three facts. (a) A subtree is a contiguous OID
//! interval wholly inside one chunk, so the witness run of any
//! below-spine meet is entirely shard-local — the shard computes
//! exactly the run the global sweep would. (b) The global sweep accepts
//! candidates deepest-first, and consumptions in disjoint subtrees
//! commute, so "all shard-local candidates first, then the spine" is a
//! legal reordering of the global schedule. (c) Cross-shard LCAs are
//! always spine nodes, so the gather sees every candidate the shards
//! deferred. The sharding equivalence property suite and the golden
//! suite pin the result: byte-identical answers, document order
//! included.
//!
//! The structural [`ncq_store::MeetIndex`] is interval-addressed, so
//! its *restriction to a shard* is the index itself probed only inside
//! the shard's interval — shards share one `Arc` of it instead of
//! copying. Full-text postings, by contrast, are genuinely restricted
//! per shard ([`ncq_fulltext::InvertedIndex::restrict`]): each shard
//! owns the postings of its chunks, the spine keeps its own slice, and
//! term lookups scatter only to the shards that own hits.

use crate::partition::PartitionMap;
use crate::pool::Pool;
use ncq_core::meet2::{meet2_indexed, Meet2};
use ncq_core::meet_multi::MeetWitness;
use ncq_core::rank::rank_meets;
use ncq_core::sweep::{plane_sweep, Verdict};
use ncq_core::{
    meet_multi, meet_multi_indexed, meet_sets_lift_ordered, AnswerSet, ChosenStrategy, Database,
    Meet, MeetBackend, MeetError, MeetOptions, MeetStrategy, SetMeets,
};
use ncq_fulltext::search::{phrase_hits, word_hits};
use ncq_fulltext::tokenize::{contains_fold, fold, tokens};
use ncq_fulltext::{HitSet, InvertedIndex};
use ncq_query::{QueryError, QueryOptions, QueryOutput};
use ncq_store::{MonetDb, Oid, PathId};
use ncq_xml::{Document, ParseError};
use std::borrow::Borrow;
use std::sync::Arc;

/// Interval probe over a gather pool's sorted survivor keys: the
/// vector kernel for pools large enough to pay for lane setup, the
/// scalar partition search otherwise (identical result either way).
fn key_range(keys: &[u32], lo: u32, hi: u32) -> (usize, usize) {
    if keys.len() < 64 {
        let start = ncq_simd::scalar::lower_bound_u32(keys, lo);
        let end = start + ncq_simd::scalar::lower_bound_u32(&keys[start..], hi);
        (start, end)
    } else {
        ncq_simd::range_u32(keys, lo, hi)
    }
}

/// Registry handle for the per-shard scatter-task duration histogram.
fn shard_task_histogram() -> &'static Arc<ncq_obs::Histogram> {
    static H: std::sync::OnceLock<Arc<ncq_obs::Histogram>> = std::sync::OnceLock::new();
    H.get_or_init(|| ncq_obs::obs().registry.histogram("ncq_shard_task_ns"))
}

/// Per-shard private state: the restricted full-text postings.
struct Shard {
    postings: InvertedIndex,
}

/// Shared immutable state behind the facade; scatter tasks clone the
/// `Arc` and own their input slices, so jobs are `'static`.
struct Inner {
    /// The full database doubles as the replicated spine: its store and
    /// meet index are interval-addressed and shared by every shard.
    /// Held by `Arc` so a deployment serving both engines (and the
    /// K = 1 delegation) shares one copy of the store and index.
    db: Arc<Database>,
    partition: PartitionMap,
    shards: Vec<Shard>,
    /// Postings owned by spine nodes (attribute owners high in the
    /// tree, or text directly under replicated elements).
    spine_postings: InvertedIndex,
    /// Spine-owned string associations, for substring scans.
    spine_strings: Vec<(PathId, Oid)>,
    /// Spine nodes ordered deepest-first (document order within a
    /// depth) — the gather roll-up's candidate schedule.
    spine_by_depth: Vec<Oid>,
}

/// A sharded execution layer with the same query surface as
/// [`Database`]: `meet_pair` / `meet_oid_sets` / `meet_hits` /
/// `meet_terms` / `run_query`, plus [`MeetBackend`] so `ncq-server`
/// workers and `ncq-query` evaluation dispatch through it unchanged.
pub struct ShardedDb {
    inner: Arc<Inner>,
    /// `None` for a single-shard layout, where every entry point
    /// delegates to the plain `Database` and a pool would only park
    /// idle threads.
    pool: Option<Pool>,
}

impl ShardedDb {
    /// Partition a loaded database into (at most) `k` shards with a
    /// pool of `min(k, cores)` scatter workers. Accepts `Database` or
    /// `Arc<Database>`; sharing the `Arc` with other consumers (e.g. a
    /// server also fronting the single engine) costs nothing — the
    /// store and index are never copied.
    pub fn new(db: impl Into<Arc<Database>>, k: usize) -> ShardedDb {
        ShardedDb::with_workers(db, k, default_workers(k))
    }

    /// [`ShardedDb::new`] with an explicit worker count.
    pub fn with_workers(db: impl Into<Arc<Database>>, k: usize, workers: usize) -> ShardedDb {
        let db: Arc<Database> = db.into();
        // `with_partition` forces the meet index before any scatter
        // task can race the build; `PartitionMap::build` reads it too.
        let partition = PartitionMap::build(db.store(), k);
        ShardedDb::with_partition(db, partition, workers)
    }

    /// Assemble the sharded layer around an existing partition map —
    /// the path a snapshot load takes (the stored cut is reused instead
    /// of re-running the chunk decomposition). Per-shard restricted
    /// postings and the spine slices are derived from the map here
    /// either way, so a loaded layout is indistinguishable from a
    /// freshly built one.
    pub fn with_partition(
        db: impl Into<Arc<Database>>,
        partition: PartitionMap,
        workers: usize,
    ) -> ShardedDb {
        let db: Arc<Database> = db.into();
        let store = db.store();
        store.meet_index(); // eager: scatter tasks must never race the build
        let shards = partition
            .shards()
            .iter()
            .map(|info| {
                let range = info.range.clone();
                Shard {
                    postings: db
                        .index()
                        .restrict(|o| range.contains(&o.index()) && !partition.is_spine(o)),
                }
            })
            .collect();
        let spine_postings = db.index().restrict(|o| partition.is_spine(o));
        let spine_strings = store
            .string_paths()
            .flat_map(|p| {
                store
                    .strings_of(p)
                    .iter()
                    .filter(|(o, _)| partition.is_spine(*o))
                    .map(move |&(o, _)| (p, o))
            })
            .collect();
        let mut spine_by_depth: Vec<Oid> = store
            .iter_oids()
            .filter(|&o| partition.is_spine(o))
            .collect();
        spine_by_depth.sort_by_key(|&o| (std::cmp::Reverse(store.depth(o)), o));
        // Size the pool from the shards actually built (a tiny document
        // may collapse below the requested K); a single-shard layout
        // never scatters, so it gets no pool at all.
        let pool =
            (partition.shard_count() > 1).then(|| Pool::new(workers.min(partition.shard_count())));
        ShardedDb {
            inner: Arc::new(Inner {
                db,
                partition,
                shards,
                spine_postings,
                spine_strings,
                spine_by_depth,
            }),
            pool,
        }
    }

    /// Parse, load and partition in one step.
    pub fn from_xml_str(xml: &str, k: usize) -> Result<ShardedDb, ParseError> {
        Ok(ShardedDb::new(Database::from_xml_str(xml)?, k))
    }

    /// Load and partition an already-parsed document.
    pub fn from_document(doc: &Document, k: usize) -> ShardedDb {
        ShardedDb::new(Database::from_document(doc), k)
    }

    /// The underlying full database (store, global index — the spine
    /// replica).
    pub fn database(&self) -> &Database {
        &self.inner.db
    }

    /// The partition map in effect.
    pub fn partition(&self) -> &PartitionMap {
        &self.inner.partition
    }

    /// Number of shards (≤ the requested K).
    pub fn shard_count(&self) -> usize {
        self.inner.partition.shard_count()
    }

    /// Number of scatter worker threads (0 for a single-shard layout,
    /// which never scatters).
    pub fn worker_count(&self) -> usize {
        self.pool.as_ref().map_or(0, Pool::workers)
    }

    /// The scatter pool — only reached from the scatter paths, which
    /// the single-shard shortcuts never enter.
    fn scatter_pool(&self) -> &Pool {
        self.pool
            .as_ref()
            .expect("scatter requires a multi-shard partition")
    }

    /// [`Pool::scatter`] with per-task wall-clock accounting: each
    /// task's duration lands in the `ncq_shard_task_ns` histogram and —
    /// when the calling thread carries a trace — as a closed
    /// `shard_task` span under the current span. Worker threads have no
    /// thread-local trace, so the coordinator attaches the timings
    /// after the fan-in.
    fn timed_scatter<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        if !ncq_obs::obs().enabled() {
            return self.scatter_pool().scatter(tasks);
        }
        let wrapped: Vec<_> = tasks
            .into_iter()
            .map(|task| {
                move || {
                    let t0 = std::time::Instant::now();
                    let out = task();
                    (out, t0.elapsed().as_nanos() as u64)
                }
            })
            .collect();
        self.scatter_pool()
            .scatter(wrapped)
            .into_iter()
            .enumerate()
            .map(|(i, (value, dur_ns))| {
                shard_task_histogram().record(dur_ns);
                ncq_obs::trace::record_closed("shard_task", dur_ns, vec![("task", i.to_string())]);
                value
            })
            .collect()
    }

    // ----- full-text entry points -----

    /// Sharded [`Database::search`]: same dispatch (word / phrase /
    /// substring with the empty-primary fallback), with each mode
    /// scattered over the per-shard postings and the spine slice.
    pub fn search(&self, term: &str) -> HitSet {
        let inner = &self.inner;
        if inner.partition.shard_count() == 1 {
            return inner.db.search(term);
        }
        let words: Vec<String> = tokens(term).collect();
        let primary = match words.as_slice() {
            [] => HitSet::new(),
            [single] if *single == fold(term.trim()) => self.scatter_word(single),
            [_] => self.scatter_substring(term),
            _ => self.scatter_phrase(term),
        };
        if primary.is_empty() && !term.trim().is_empty() {
            self.scatter_substring(term)
        } else {
            primary
        }
    }

    /// Word lookup: one hash probe per shard owning hits plus the spine
    /// slice. Hash probes are too cheap to parallelize — the scatter
    /// here is in the *data*: each restricted index only decodes its
    /// own postings.
    fn scatter_word(&self, word: &str) -> HitSet {
        let inner = &self.inner;
        let mut out = word_hits(&inner.spine_postings, word);
        for shard in &inner.shards {
            out.union(&word_hits(&shard.postings, word));
        }
        out
    }

    /// Phrase query: the candidate intersection distributes over the
    /// owner partition (a candidate's owner lives in exactly one
    /// shard), so per-shard [`phrase_hits`] runs in parallel and the
    /// union is exactly the global answer.
    fn scatter_phrase(&self, phrase: &str) -> HitSet {
        let inner = &self.inner;
        let tasks: Vec<_> = (0..inner.shards.len())
            .map(|s| {
                let inner = Arc::clone(&self.inner);
                let phrase = phrase.to_owned();
                move || phrase_hits(inner.db.store(), &inner.shards[s].postings, &phrase)
            })
            .collect();
        let mut out = phrase_hits(inner.db.store(), &inner.spine_postings, phrase);
        for hits in self.timed_scatter(tasks) {
            out.union(&hits);
        }
        out
    }

    /// Substring scan: the expensive full scan, scattered — each shard
    /// scans only its restricted string relations
    /// ([`MonetDb::strings_in_range`]), the spine scans its own few
    /// associations.
    fn scatter_substring(&self, needle: &str) -> HitSet {
        let inner = &self.inner;
        let tasks: Vec<_> = (0..inner.shards.len())
            .map(|s| {
                let inner = Arc::clone(&self.inner);
                let needle = needle.to_owned();
                move || {
                    let store = inner.db.store();
                    let range = inner.partition.shards()[s].range.clone();
                    let mut hits = HitSet::new();
                    for path in store.string_paths() {
                        for (owner, text) in store.strings_in_range(path, range.clone()) {
                            if !inner.partition.is_spine(*owner) && contains_fold(text, &needle) {
                                hits.insert(path, *owner);
                            }
                        }
                    }
                    hits
                }
            })
            .collect();
        let store = inner.db.store();
        let mut out = HitSet::new();
        for &(path, owner) in &inner.spine_strings {
            let text = store
                .string_value(path, owner)
                .expect("spine string exists");
            if contains_fold(text, needle) {
                out.insert(path, owner);
            }
        }
        for hits in self.timed_scatter(tasks) {
            out.union(&hits);
        }
        out
    }

    // ----- meet entry points -----

    /// Pairwise meet: O(1) on the shared interval-addressed index —
    /// scattering a single probe would only add latency.
    pub fn meet_pair(&self, o1: Oid, o2: Oid) -> Meet2 {
        meet2_indexed(self.inner.db.store(), o1, o2)
    }

    /// Sharded [`Database::meet_oid_sets`]. Same plan, same answers:
    /// the global planner picks lift or sweep exactly as the single
    /// database would; the lift tier (chosen for shallow inputs, where
    /// rounds are few) runs on the spine replica, the sweep tier
    /// scatters with a per-shard lift/sweep decision.
    pub fn meet_oid_sets(&self, s1: &[Oid], s2: &[Oid]) -> Result<SetMeets, MeetError> {
        self.meet_oid_sets_with(s1, s2, MeetStrategy::Auto)
    }

    /// [`ShardedDb::meet_oid_sets`] with an explicit strategy override.
    pub fn meet_oid_sets_with(
        &self,
        s1: &[Oid],
        s2: &[Oid],
        strategy: MeetStrategy,
    ) -> Result<SetMeets, MeetError> {
        let db = &self.inner.db;
        let planner = db.planner();
        if self.shard_count() == 1 {
            return planner.meet_sets(s1, s2, strategy);
        }
        let chosen = match strategy {
            MeetStrategy::Auto => planner.plan_sets(s1, s2)?.strategy,
            MeetStrategy::Lift => ChosenStrategy::Lift,
            MeetStrategy::Sweep => ChosenStrategy::Sweep,
        };
        if s1.is_empty() || s2.is_empty() {
            return Err(MeetError::EmptyInput);
        }
        match chosen {
            ChosenStrategy::Lift => meet_sets_lift_ordered(db.store(), s1, s2),
            ChosenStrategy::Sweep => self.scatter_meet_sets(s1, s2),
        }
    }

    /// Sharded [`Database::meet_hits`]: the generalized meet, ranked.
    /// The roll-up tier (planned only for tiny inputs) runs on the
    /// spine replica; the sweep tier scatters.
    pub fn meet_hits<H: Borrow<HitSet>>(&self, inputs: &[H], options: &MeetOptions) -> Vec<Meet> {
        let db = &self.inner.db;
        let chosen = match options.strategy {
            MeetStrategy::Auto => db.planner().plan_multi(inputs).strategy,
            MeetStrategy::Lift => ChosenStrategy::Lift,
            MeetStrategy::Sweep => ChosenStrategy::Sweep,
        };
        let mut meets = match chosen {
            ChosenStrategy::Lift => meet_multi(db.store(), inputs, options),
            ChosenStrategy::Sweep if self.shard_count() > 1 => {
                self.scatter_meet_multi(inputs, options)
            }
            ChosenStrategy::Sweep => meet_multi_indexed(db.store(), inputs, options),
        };
        rank_meets(&mut meets);
        // Top-k re-cut. The scatter tasks already bounded each shard's
        // *emitted* list to its local top k (consumption stays exact);
        // the final cut over shard winners + spine meets is the global
        // top k, byte-identical to the unbounded prefix.
        if let Some(k) = options.limit {
            meets.truncate(k);
        }
        meets
    }

    /// The paper's signature query through the sharded engine.
    pub fn meet_terms(&self, terms: &[&str]) -> Result<AnswerSet, MeetError> {
        self.meet_terms_with(terms, &MeetOptions::default())
    }

    /// [`ShardedDb::meet_terms`] with explicit [`MeetOptions`].
    pub fn meet_terms_with(
        &self,
        terms: &[&str],
        options: &MeetOptions,
    ) -> Result<AnswerSet, MeetError> {
        let inputs: Vec<HitSet> = terms.iter().map(|t| self.search(t)).collect();
        let meets = self.meet_hits(&inputs, options);
        Ok(AnswerSet::from_meets(self.inner.db.store(), meets))
    }

    // ----- query dialect -----

    /// Run a SQL-with-paths query through the sharded engine
    /// (dispatches via [`MeetBackend`]).
    pub fn run_query(&self, src: &str) -> Result<QueryOutput, QueryError> {
        ncq_query::run_query(self, src)
    }

    /// [`ShardedDb::run_query`] with explicit [`QueryOptions`].
    pub fn run_query_opts(
        &self,
        src: &str,
        options: &QueryOptions,
    ) -> Result<QueryOutput, QueryError> {
        ncq_query::run_query_opts(self, src, options)
    }

    // ----- scatter/gather executors -----

    /// Sweep-tier two-set meet: route by shard, evaluate below the
    /// spine in parallel (per-shard lift-with-freeze or gated sweep,
    /// planner's choice), then one gather sweep over the survivors.
    fn scatter_meet_sets(&self, set1: &[Oid], set2: &[Oid]) -> Result<SetMeets, MeetError> {
        let inner = &self.inner;
        let store = inner.db.store();
        let summary = store.summary();
        let p1 = homogeneous_path(store, set1)?.expect("checked non-empty");
        let p2 = homogeneous_path(store, set2)?.expect("checked non-empty");
        let (d1, d2) = (summary.depth(p1), summary.depth(p2));

        // Route sorted, deduplicated sides; spine-owned inputs go
        // straight to the gather pool.
        let k = inner.shards.len();
        let mut per_shard: Vec<(Vec<Oid>, Vec<Oid>)> = (0..k).map(|_| Default::default()).collect();
        let mut pool_items: Vec<(Oid, u8)> = Vec::new();
        for (side, set) in [(0u8, set1), (1u8, set2)] {
            let mut sorted = set.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            for o in sorted {
                match inner.partition.shard_of(o) {
                    Some(s) if side == 0 => per_shard[s].0.push(o),
                    Some(s) => per_shard[s].1.push(o),
                    None => pool_items.push((o, side)),
                }
            }
        }

        // Scatter: one task per shard holding any items. The planner
        // decides lift vs sweep per shard from the rounds left below
        // that shard's spine floor.
        let planner = inner.db.planner();
        let tasks: Vec<_> = per_shard
            .into_iter()
            .enumerate()
            .filter(|(_, (a, b))| !a.is_empty() || !b.is_empty())
            .map(|(s, (a, b))| {
                let floor = inner.partition.shards()[s].min_root_depth;
                let lift = !a.is_empty()
                    && !b.is_empty()
                    && planner
                        .plan_shard_sets(&a, &b, floor)
                        .expect("both sides non-empty")
                        .strategy
                        == ChosenStrategy::Lift;
                let inner = Arc::clone(&self.inner);
                move || {
                    if lift {
                        shard_lift_sets(&inner, a, b, p1, p2, d1, d2)
                    } else {
                        shard_sweep_sets(&inner, a, b, d1, d2)
                    }
                }
            })
            .collect();

        let mut result = SetMeets::default();
        let mut meets: Vec<(Oid, usize)> = Vec::new();
        {
            let _scatter = ncq_obs::trace::span("scatter");
            ncq_obs::trace::annotate("tasks", tasks.len().to_string());
            for (local_meets, survivors, lookups) in self.timed_scatter(tasks) {
                meets.extend(local_meets);
                pool_items.extend(survivors);
                result.lookups += lookups;
            }
        }
        let _gather = ncq_obs::trace::span("gather");

        // Gather: every remaining candidate is a spine node, so instead
        // of an adjacency sweep the survivors roll up the spine
        // deepest-first — each spine node's run is one interval probe
        // over the sorted survivor list.
        pool_items.sort_unstable_by_key(|&(o, side)| (o, side));
        pool_items.dedup();
        let index = store.meet_index();
        let round_at = |depth: usize| d1.abs_diff(d2) + (d1.min(d2) - depth);
        // Fewer than two survivors cannot form a cross-shard meet —
        // skip the spine walk entirely (the common case when every hit
        // was consumed inside its shard).
        if pool_items.len() >= 2 {
            // The survivor keys as raw lanes: each spine node's run is
            // one bulk interval-containment probe over them.
            let keys: Vec<u32> = pool_items.iter().map(|&(o, _)| o.raw()).collect();
            let mut alive = Alive::new(pool_items.len());
            let mut run: Vec<usize> = Vec::new();
            for &s in &self.inner.spine_by_depth {
                let range = index.subtree_range(s);
                result.lookups += 1;
                run.clear();
                let (mut side0, mut side1) = (false, false);
                let (start, end) = key_range(&keys, range.start as u32, range.end as u32);
                let mut i = alive.find(start);
                while i < end {
                    run.push(i);
                    if pool_items[i].1 == 0 {
                        side0 = true;
                    } else {
                        side1 = true;
                    }
                    i = alive.find(i + 1);
                }
                // A meet needs a witness from each side; otherwise the
                // run stays alive for shallower spine nodes.
                if side0 && side1 {
                    meets.push((s, round_at(index.depth(s))));
                    for &i in &run {
                        alive.consume(i);
                    }
                }
            }
        }

        // The global sweep accepts in (depth desc, node asc) order =
        // (round asc, node asc); one sort restores it exactly.
        meets.sort_unstable_by_key(|&(o, round)| (round, o));
        result.join_rounds = meets.iter().map(|&(_, r)| r).max().unwrap_or(0);
        result.meets = meets;
        Ok(result)
    }

    /// Sweep-tier generalized meet: route merged hits by shard, run the
    /// gated sweep per shard in parallel, gather the survivors.
    fn scatter_meet_multi<H: Borrow<HitSet>>(
        &self,
        inputs: &[H],
        options: &MeetOptions,
    ) -> Vec<Meet> {
        let inner = &self.inner;

        // Merge all hits in document order with input provenance —
        // identical to the single-db indexed sweep.
        let mut items: Vec<(Oid, u32)> = inputs
            .iter()
            .enumerate()
            .flat_map(|(i, hits)| hits.borrow().iter().map(move |(_, o)| (o, i as u32)))
            .collect();
        items.sort_unstable();

        let k = inner.shards.len();
        let mut per_shard: Vec<Vec<(Oid, u32)>> = (0..k).map(|_| Vec::new()).collect();
        let mut pool_items: Vec<(Oid, u32)> = Vec::new();
        for &(o, input) in &items {
            match inner.partition.shard_of(o) {
                Some(s) => per_shard[s].push((o, input)),
                None => pool_items.push((o, input)),
            }
        }

        let tasks: Vec<_> = per_shard
            .into_iter()
            .filter(|items| !items.is_empty())
            .map(|items| {
                let inner = Arc::clone(&self.inner);
                let options = options.clone();
                move || {
                    let (mut local_meets, survivors) = sweep_multi(&inner, items, &options);
                    // Per-shard top-k bound: a meet outside its own
                    // shard's k best is beaten by k meets that all
                    // reach the global re-cut, so it can never rank in
                    // the global top k. The sweep itself still runs to
                    // completion — consumption (and therefore the
                    // survivors fed to the gather) is untouched.
                    if let Some(k) = options.limit {
                        if local_meets.len() > k {
                            rank_meets(&mut local_meets);
                            local_meets.truncate(k);
                        }
                    }
                    (local_meets, survivors)
                }
            })
            .collect();

        let mut meets: Vec<Meet> = Vec::new();
        {
            let _scatter = ncq_obs::trace::span("scatter");
            ncq_obs::trace::annotate("tasks", tasks.len().to_string());
            for (local_meets, survivors) in self.timed_scatter(tasks) {
                meets.extend(local_meets);
                pool_items.extend(survivors);
            }
        }

        let _gather = ncq_obs::trace::span("gather");
        pool_items.sort_unstable();
        self.gather_multi(&pool_items, options, &mut meets);

        // No canonical pre-sort: the only caller is the facade's
        // `meet_hits`, whose `rank_meets` orders by the *total* key
        // (distance, witness count, node) — each node is accepted at
        // most once, so the rank fully determines the final order.
        meets
    }

    /// The gather roll-up for the generalized meet: survivors resolve
    /// on the spine, deepest node first. Verdicts (the `meet^δ` bound,
    /// filter-suppressed consumption, capped document-order witness
    /// samples) replicate the single-db sweep's candidate logic; a
    /// spine node whose run fails `meet^δ` leaves the run alive for its
    /// shallower ancestors — exactly the sweep's `Reject` memoization,
    /// since every spine node is visited at most once.
    fn gather_multi(&self, items: &[(Oid, u32)], options: &MeetOptions, meets: &mut Vec<Meet>) {
        if items.len() < 2 {
            return;
        }
        let index = self.inner.db.store().meet_index();
        let keys: Vec<u32> = items.iter().map(|&(o, _)| o.raw()).collect();
        let mut alive = Alive::new(items.len());
        let mut run: Vec<usize> = Vec::new();
        for &s in &self.inner.spine_by_depth {
            let range = index.subtree_range(s);
            run.clear();
            let (start, end) = key_range(&keys, range.start as u32, range.end as u32);
            let mut i = alive.find(start);
            while i < end {
                run.push(i);
                i = alive.find(i + 1);
            }
            if run.len() < 2 {
                continue;
            }
            match multi_candidate(&self.inner, items, &run, s, options) {
                // A `meet^δ` failure: the run stays alive for
                // shallower spine nodes.
                MultiVerdict::Keep => {}
                MultiVerdict::Consume(meet) => {
                    meets.extend(meet);
                    for &i in &run {
                        alive.consume(i);
                    }
                }
            }
        }
    }
}

/// "Next alive index ≥ i" with path compression — the gather roll-up's
/// consumption structure (consumed runs are spliced out in amortized
/// near-constant time).
struct Alive {
    jump: Vec<u32>,
}

impl Alive {
    fn new(n: usize) -> Alive {
        Alive {
            jump: (0..=n as u32).collect(),
        }
    }

    fn find(&mut self, start: usize) -> usize {
        let mut root = start;
        while self.jump[root] as usize != root {
            root = self.jump[root] as usize;
        }
        let mut i = start;
        while self.jump[i] as usize != i {
            let next = self.jump[i] as usize;
            self.jump[i] = root as u32;
            i = next;
        }
        root
    }

    fn consume(&mut self, i: usize) {
        self.jump[i] = i as u32 + 1;
    }
}

impl MeetBackend for ShardedDb {
    fn store(&self) -> &MonetDb {
        self.inner.db.store()
    }

    fn search(&self, term: &str) -> HitSet {
        ShardedDb::search(self, term)
    }

    fn meet_hit_groups(&self, inputs: &[&HitSet], options: &MeetOptions) -> Vec<Meet> {
        self.meet_hits(inputs, options)
    }

    fn save_snapshot(&self, path: &std::path::Path) -> Result<(), ncq_store::SnapshotError> {
        ShardedDb::save_snapshot(self, path)
    }

    fn open_snapshot_like(
        &self,
        path: &std::path::Path,
    ) -> Result<Arc<dyn MeetBackend>, ncq_store::SnapshotError> {
        // Same shape: re-shard the loaded corpus at this engine's
        // requested K (the stored cut is reused when it matches).
        Ok(Arc::new(ShardedDb::open_snapshot(
            path,
            self.partition().requested_k(),
        )?))
    }
}

/// Default scatter-pool size for a K-way layout: one worker per shard,
/// capped by the machine's cores. One policy, shared by
/// [`ShardedDb::new`] and the snapshot cold-start path.
pub(crate) fn default_workers(k: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    cores.min(k.max(1))
}

impl std::fmt::Debug for ShardedDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDb")
            .field("shards", &self.shard_count())
            .field("spine", &self.inner.partition.spine_len())
            .field("workers", &self.worker_count())
            .finish()
    }
}

// ----- shard-local executors -----

/// Homogeneity check, mirroring the planner-tier executors' error.
fn homogeneous_path(db: &MonetDb, set: &[Oid]) -> Result<Option<PathId>, MeetError> {
    let Some(&first) = set.first() else {
        return Ok(None);
    };
    let expected = db.sigma(first);
    for &o in &set[1..] {
        let found = db.sigma(o);
        if found != expected {
            return Err(MeetError::HeterogeneousInput { expected, found });
        }
    }
    Ok(Some(expected))
}

/// Sorted-set intersection (inputs sorted and deduplicated).
fn intersect(a: &[Oid], b: &[Oid]) -> Vec<Oid> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Remove (sorted) `remove` from (sorted) `set`.
fn difference(set: &mut Vec<Oid>, remove: &[Oid]) {
    if !remove.is_empty() {
        set.retain(|o| remove.binary_search(o).is_err());
    }
}

/// What a per-shard two-set executor hands back: local `(meet, round)`
/// pairs, surviving `(oid, side)` items for the gather, and the
/// look-ups it performed.
type ShardSetsOutput = (Vec<(Oid, usize)>, Vec<(Oid, u8)>, usize);

/// Per-shard two-set executor, sweep flavour: the indexed plane sweep
/// with the spine gate. Returns `(local meets, surviving items,
/// LCA probes)`.
fn shard_sweep_sets(
    inner: &Inner,
    side1: Vec<Oid>,
    side2: Vec<Oid>,
    d1: usize,
    d2: usize,
) -> ShardSetsOutput {
    // Linear merge of the two sorted sides, side 0 first on ties —
    // the same item list the single-db merged sweep builds.
    let mut items: Vec<(Oid, u8)> = Vec::with_capacity(side1.len() + side2.len());
    let (mut i, mut j) = (0, 0);
    while i < side1.len() || j < side2.len() {
        let take_left = match (side1.get(i), side2.get(j)) {
            (Some(a), Some(b)) => a <= b,
            (Some(_), None) => true,
            _ => false,
        };
        if take_left {
            items.push((side1[i], 0));
            i += 1;
        } else {
            items.push((side2[j], 1));
            j += 1;
        }
    }

    let index = inner.db.store().meet_index();
    let round_at = |depth: usize| d1.abs_diff(d2) + (d1.min(d2) - depth);
    let oids: Vec<Oid> = items.iter().map(|&(o, _)| o).collect();
    let mut meets: Vec<(Oid, usize)> = Vec::new();
    let mut consumed = vec![false; items.len()];
    let probes = plane_sweep(
        index,
        &oids,
        |li, ri| items[li].1 != items[ri].1,
        |m, run| {
            if inner.partition.is_spine(m) {
                return Verdict::Reject; // defer to the gather sweep
            }
            meets.push((m, round_at(index.depth(m))));
            for &i in run {
                consumed[i] = true;
            }
            Verdict::Accept
        },
    );
    let survivors = items
        .iter()
        .enumerate()
        .filter(|&(i, _)| !consumed[i])
        .map(|(_, &item)| item)
        .collect();
    (meets, survivors, probes)
}

/// Per-shard two-set executor, lift flavour: the paper's Figure 4
/// frontier lift restricted to the shard, with a twist — an element
/// whose lift lands on the spine is **frozen** at that position and
/// handed to the gather phase instead of climbing on. Everything below
/// the spine behaves exactly like the global lift restricted to this
/// shard's chunks (lifting and dedup are element-wise, so restriction
/// commutes with them).
fn shard_lift_sets(
    inner: &Inner,
    side1: Vec<Oid>,
    side2: Vec<Oid>,
    p1: PathId,
    p2: PathId,
    d1: usize,
    d2: usize,
) -> ShardSetsOutput {
    let store = inner.db.store();
    let summary = store.summary();
    let round_at = |depth: usize| d1.abs_diff(d2) + (d1.min(d2) - depth);
    let (mut f1, mut f2) = (side1, side2);
    let (mut p1, mut p2) = (p1, p2);
    let mut meets: Vec<(Oid, usize)> = Vec::new();
    let mut frozen: Vec<(Oid, u8)> = Vec::new();
    let mut lookups = 0usize;

    // Lift a sorted homogeneous frontier one level; parents stay sorted
    // (same argument as the planner's ordered lift). Elements landing
    // on the spine freeze out of the frontier.
    let mut lift_freeze = |f: &mut Vec<Oid>, side: u8, lookups: &mut usize| {
        *lookups += f.len();
        let mut out = Vec::with_capacity(f.len());
        for &o in f.iter() {
            let parent = store.parent(o).expect("below-spine nodes are non-root");
            if inner.partition.is_spine(parent) {
                frozen.push((parent, side));
            } else {
                out.push(parent);
            }
        }
        out.dedup();
        *f = out;
    };

    loop {
        if f1.is_empty() && f2.is_empty() {
            break;
        }
        if p1 == p2 && !f1.is_empty() && !f2.is_empty() {
            let d = intersect(&f1, &f2);
            if !d.is_empty() {
                let round = round_at(summary.depth(p1));
                meets.extend(d.iter().map(|&o| (o, round)));
                difference(&mut f1, &d);
                difference(&mut f2, &d);
            }
        }
        if summary.lt(p1, p2) {
            lift_freeze(&mut f1, 0, &mut lookups);
            p1 = summary.parent(p1).expect("deeper path has a parent");
        } else if summary.lt(p2, p1) {
            lift_freeze(&mut f2, 1, &mut lookups);
            p2 = summary.parent(p2).expect("deeper path has a parent");
        } else if p1 == p2 && summary.depth(p1) == 0 {
            // All surviving elements froze on their way up (the root is
            // spine whenever there is more than one shard); nothing can
            // still be active here — guard against looping regardless.
            break;
        } else {
            lift_freeze(&mut f1, 0, &mut lookups);
            lift_freeze(&mut f2, 1, &mut lookups);
            p1 = summary.parent(p1).expect("non-root path has a parent");
            p2 = summary.parent(p2).expect("non-root path has a parent");
        }
    }
    (meets, frozen, lookups)
}

/// What [`multi_candidate`] decided about one candidate node.
enum MultiVerdict {
    /// A `meet^δ` failure: the run stays alive for shallower
    /// candidates.
    Keep,
    /// Consume the run; `None` when the path filter suppressed the
    /// result ("they are output and not considered anymore").
    Consume(Option<Meet>),
}

/// Evaluate one generalized-meet candidate — the single place encoding
/// the indexed sweep's candidate logic for the sharded executors:
/// distance from the two closest climbs, `meet^δ` rejection,
/// filter-suppressed consumption, capped witness samples in document
/// order. Shared by the gated per-shard sweep and the gather roll-up so
/// the semantics cannot drift between scatter and gather.
fn multi_candidate(
    inner: &Inner,
    items: &[(Oid, u32)],
    run: &[usize],
    node: Oid,
    options: &MeetOptions,
) -> MultiVerdict {
    let store = inner.db.store();
    let index = store.meet_index();
    let m_depth = index.depth(node);
    let (mut min_climb, mut second_climb) = (usize::MAX, usize::MAX);
    for &i in run {
        let climb = index.depth(items[i].0) - m_depth;
        if climb < min_climb {
            second_climb = min_climb;
            min_climb = climb;
        } else if climb < second_climb {
            second_climb = climb;
        }
    }
    let distance = min_climb.saturating_add(second_climb);
    if options.max_distance.is_some_and(|d| distance > d) {
        return MultiVerdict::Keep;
    }
    let meet = options.filter.accepts(store.sigma(node)).then(|| {
        let witnesses = run
            .iter()
            .take(options.cap())
            .map(|&i| MeetWitness {
                origin: items[i].0,
                input: items[i].1 as usize,
                climb: index.depth(items[i].0) - m_depth,
            })
            .collect();
        Meet {
            node,
            path: store.sigma(node),
            distance,
            witness_count: run.len(),
            witnesses,
        }
    });
    MultiVerdict::Consume(meet)
}

/// The per-shard generalized sweep: the plane sweep with the spine gate
/// (cross-shard candidates defer to the gather), candidate verdicts via
/// [`multi_candidate`]. Also reports which items survived.
fn sweep_multi(
    inner: &Inner,
    items: Vec<(Oid, u32)>,
    options: &MeetOptions,
) -> (Vec<Meet>, Vec<(Oid, u32)>) {
    let index = inner.db.store().meet_index();
    let oids: Vec<Oid> = items.iter().map(|&(o, _)| o).collect();
    let mut meets: Vec<Meet> = Vec::new();
    let mut consumed = vec![false; items.len()];

    plane_sweep(
        index,
        &oids,
        |_, _| true,
        |m, run| {
            if inner.partition.is_spine(m) {
                return Verdict::Reject; // defer to the gather roll-up
            }
            match multi_candidate(inner, &items, run, m, options) {
                MultiVerdict::Keep => Verdict::Reject,
                MultiVerdict::Consume(meet) => {
                    meets.extend(meet);
                    for &i in run {
                        consumed[i] = true;
                    }
                    Verdict::Accept
                }
            }
        },
    );

    let survivors = items
        .iter()
        .enumerate()
        .filter(|&(i, _)| !consumed[i])
        .map(|(_, &item)| item)
        .collect();
    (meets, survivors)
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE1: &str = r#"
<bibliography>
  <institute>
    <article key="BB99">
      <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
      <title>How to Hack</title>
      <year>1999</year>
    </article>
    <article key="BK99">
      <author>Bob Byte</author>
      <title>Hacking &amp; RSI</title>
      <year>1999</year>
    </article>
  </institute>
</bibliography>"#;

    fn pair(k: usize) -> (Database, ShardedDb) {
        let db = Database::from_xml_str(FIGURE1).unwrap();
        (db.clone(), ShardedDb::new(db, k))
    }

    #[test]
    fn figure1_answers_match_at_every_k() {
        let single = Database::from_xml_str(FIGURE1).unwrap();
        for k in [1, 2, 3, 4, 8] {
            let sharded = ShardedDb::new(single.clone(), k);
            for terms in [
                vec!["Bit", "1999"],
                vec!["Ben", "Bit"],
                vec!["Bob", "Byte"],
                vec!["Bob", "Byte", "Ben", "Bit"],
                vec!["Ben", "RSI"],
                vec!["absent", "1999"],
            ] {
                let a = single.meet_terms(&terms).unwrap();
                let b = sharded.meet_terms(&terms).unwrap();
                assert_eq!(
                    a.to_detailed_xml(),
                    b.to_detailed_xml(),
                    "k={k} terms={terms:?}"
                );
            }
        }
    }

    #[test]
    fn search_modes_match_the_single_database() {
        let (single, sharded) = pair(4);
        for term in [
            "Bit", "1999", "hack", "Hackin", "Ben Bit", "BB99", "absent", "", "Bob Byte",
        ] {
            assert_eq!(single.search(term), sharded.search(term), "{term:?}");
        }
    }

    #[test]
    fn meet_pair_matches() {
        let (single, sharded) = pair(3);
        for a in single.store().iter_oids() {
            for b in single.store().iter_oids() {
                assert_eq!(single.meet_pair(a, b), sharded.meet_pair(a, b));
            }
        }
    }

    #[test]
    fn oid_set_meets_match_across_strategies() {
        let (single, sharded) = pair(4);
        let years: Vec<Oid> = single.search("1999").iter().map(|(_, o)| o).collect();
        let titles: Vec<Oid> = single.search_word("Hack").iter().map(|(_, o)| o).collect();
        for strategy in [MeetStrategy::Auto, MeetStrategy::Lift, MeetStrategy::Sweep] {
            let a = single
                .meet_oid_sets_with(&years, &titles, strategy)
                .unwrap();
            let b = sharded
                .meet_oid_sets_with(&years, &titles, strategy)
                .unwrap();
            assert_eq!(a.meets, b.meets, "{strategy:?}");
            assert_eq!(a.join_rounds, b.join_rounds, "{strategy:?}");
        }
        // Error behaviour matches too.
        assert_eq!(
            sharded.meet_oid_sets(&[], &years),
            Err(MeetError::EmptyInput)
        );
        let mut mixed = years.clone();
        mixed.extend(titles.iter().copied());
        assert!(matches!(
            sharded.meet_oid_sets_with(&mixed, &years, MeetStrategy::Sweep),
            Err(MeetError::HeterogeneousInput { .. })
        ));
    }

    #[test]
    fn options_flow_through_the_scatter() {
        let (single, sharded) = pair(4);
        let inputs = vec![single.search("Bit"), single.search("1999")];
        for options in [
            MeetOptions::default(),
            MeetOptions {
                max_distance: Some(4),
                ..MeetOptions::default()
            },
            MeetOptions {
                strategy: MeetStrategy::Sweep,
                witness_cap: 1,
                ..MeetOptions::default()
            },
            MeetOptions {
                filter: ncq_core::PathFilter::exclude_root(single.store()),
                strategy: MeetStrategy::Sweep,
                ..MeetOptions::default()
            },
        ] {
            assert_eq!(
                single.meet_hits(&inputs, &options),
                sharded.meet_hits(&inputs, &options),
                "{options:?}"
            );
        }
    }

    #[test]
    fn queries_run_through_the_backend() {
        let (single, sharded) = pair(4);
        let q = "select meet(t1, t2) from bibliography/% as t1, bibliography/% as t2 \
                 where t1 contains 'Bit' and t2 contains '1999'";
        let a = ncq_query::run_query(&single, q).unwrap();
        let b = sharded.run_query(q).unwrap();
        assert_eq!(a, b);
        let rows = sharded
            .run_query("select t from bibliography/institute/article as t")
            .unwrap();
        let QueryOutput::Rows(rows) = rows else {
            panic!("expected rows");
        };
        assert_eq!(rows.rows.len(), 2);
    }

    #[test]
    fn debug_reports_the_layout() {
        let (_, sharded) = pair(2);
        let text = format!("{sharded:?}");
        assert!(text.contains("shards"));
        assert!(sharded.worker_count() >= 1);
        assert!(sharded.shard_count() >= 1);
        assert!(sharded.database().store().node_count() > 0);
        assert!(sharded.partition().total_mass() > 0);
    }
}
