//! The partition map: cutting a document into K preorder-interval
//! shards plus a replicated spine.
//!
//! Because OIDs are assigned in depth-first document order, every
//! subtree is a contiguous OID interval ([`ncq_store::MeetIndex`]'s
//! preorder intervals). A document therefore shards *naturally*: pick a
//! set of **chunk roots** whose subtrees cover the document, pack
//! consecutive chunks into K balanced shards, and replicate only the
//! **spine** — the proper ancestors of the chunk roots — so that every
//! cross-shard meet resolves on replicated state. The spine is tiny by
//! construction: it contains exactly the nodes too heavy to fit a
//! single chunk, i.e. O(chunks × depth) nodes.
//!
//! Balancing weighs subtrees by [`ncq_store::PartitionStats`] — node
//! count plus posting mass — so a shard owning few huge text nodes and
//! a shard owning many tiny elements cost about the same to scan.
//!
//! Invariants the executors build on:
//!
//! * every object is either on the spine or owned by exactly one shard;
//! * a shard's owned objects lie inside its covering preorder interval
//!   `[first chunk root, end of last chunk subtree)`, and the covering
//!   intervals of distinct shards are disjoint and ascending;
//! * the LCA of two objects owned by *different* shards — or of any
//!   object with a spine object — is a spine node (subtree intervals
//!   nest, so a common ancestor of nodes in two chunks properly
//!   contains a chunk root).

use ncq_store::{Col, MonetDb, Oid};
use std::ops::Range;

/// One shard of the partition: a run of consecutive chunk subtrees.
#[derive(Debug, Clone)]
pub struct ShardInfo {
    /// Chunk roots in preorder. The shard owns exactly the union of
    /// their subtrees.
    pub roots: Vec<Oid>,
    /// Covering preorder interval: from the first chunk root to the end
    /// of the last chunk's subtree. Spine nodes *inside* the interval
    /// (ancestors of later chunks) are not owned by the shard.
    pub range: Range<usize>,
    /// Owned objects (sum of chunk subtree sizes; excludes spine).
    pub nodes: usize,
    /// Owned mass (node count + posting mass, from `PartitionStats`).
    pub mass: u64,
    /// Depth of the shallowest chunk root — the shard's *spine floor*;
    /// per-shard meet evaluation only runs below it.
    pub min_root_depth: usize,
}

/// The K-way partition of one document.
#[derive(Debug, Clone)]
pub struct PartitionMap {
    /// The K the partition was *requested* with (shard_count may be
    /// smaller for tiny documents). Persisted with the map so a
    /// snapshot load can tell whether a stored cut matches the K it
    /// was asked for.
    pub(crate) requested_k: usize,
    pub(crate) shards: Vec<ShardInfo>,
    /// Bitset over OIDs: true = spine (replicated) node. A [`Col`] so
    /// a v3 snapshot open serves it straight out of the mapped file.
    pub(crate) spine: Col<u64>,
    pub(crate) spine_nodes: usize,
    pub(crate) total_mass: u64,
}

impl PartitionMap {
    /// Cut `db` into (at most) `k` shards balanced by mass, splitting
    /// only on subtree boundaries. `k = 1` (or a single-object
    /// document) yields one shard owning everything and an empty spine.
    pub fn build(db: &MonetDb, k: usize) -> PartitionMap {
        let n = db.node_count();
        let stats = db.partition_stats();
        let index = db.meet_index();
        let total_mass = stats.total_mass();
        let k = k.max(1);

        let mut spine = vec![0u64; n.div_ceil(64)];
        let mut spine_nodes = 0usize;
        if k == 1 || n == 1 {
            return PartitionMap {
                requested_k: k,
                shards: vec![ShardInfo {
                    roots: vec![db.root()],
                    range: 0..n,
                    nodes: n,
                    mass: total_mass,
                    min_root_depth: 0,
                }],
                spine: spine.into(),
                spine_nodes,
                total_mass,
            };
        }

        // Chunk decomposition: descend from the root, emitting every
        // subtree that fits the chunk target and recursing through (and
        // replicating) the nodes that don't. Over-decomposing by 8×
        // relative to the shard target gives the greedy packer slack to
        // balance without splitting below subtree granularity.
        let chunk_target = (total_mass / (8 * k as u64)).max(1);
        let mut chunks: Vec<Oid> = Vec::new();
        let mut stack: Vec<Oid> = vec![db.root()];
        while let Some(o) = stack.pop() {
            let range = index.subtree_range(o);
            let mass = stats.interval_mass(range.clone());
            // A node with no children cannot be split further.
            let leaf = range.len() == 1;
            if mass <= chunk_target || leaf {
                chunks.push(o);
                continue;
            }
            spine[o.index() / 64] |= 1 << (o.index() % 64);
            spine_nodes += 1;
            // Children in reverse document order so the stack pops them
            // in document order — chunks come out in preorder.
            let mut children = Vec::new();
            let mut c = o.index() + 1;
            while c < range.end {
                children.push(Oid::from_index(c));
                c = index.subtree_range(Oid::from_index(c)).end;
            }
            stack.extend(children.into_iter().rev());
        }
        debug_assert!(chunks.windows(2).all(|w| w[0] < w[1]), "chunks in preorder");

        // Greedy packing of consecutive chunks into k shards: close a
        // shard once it holds its fair share of the remaining mass.
        let owned_mass: u64 = total_mass - spine_mass(db, &spine);
        let mut shards: Vec<ShardInfo> = Vec::new();
        let mut acc: Vec<Oid> = Vec::new();
        let mut acc_mass = 0u64;
        let mut remaining = owned_mass;
        for (i, &root) in chunks.iter().enumerate() {
            let mass = stats.interval_mass(index.subtree_range(root));
            acc.push(root);
            acc_mass += mass;
            let shards_left = k - shards.len();
            let chunks_left = chunks.len() - i - 1;
            let fair = remaining.div_ceil(shards_left as u64);
            // Close when the shard reached its fair share, or when the
            // leftover chunks are only just enough to populate the
            // remaining shards.
            if (acc_mass >= fair || chunks_left < shards_left) && shards.len() < k - 1
                || chunks_left == 0
            {
                remaining -= acc_mass;
                shards.push(Self::close_shard(
                    db,
                    index,
                    std::mem::take(&mut acc),
                    acc_mass,
                ));
                acc_mass = 0;
            }
        }
        debug_assert!(acc.is_empty());

        PartitionMap {
            requested_k: k,
            shards,
            spine: spine.into(),
            spine_nodes,
            total_mass,
        }
    }

    fn close_shard(
        db: &MonetDb,
        index: &ncq_store::MeetIndex,
        roots: Vec<Oid>,
        mass: u64,
    ) -> ShardInfo {
        let start = roots.first().expect("non-empty shard").index();
        let end = index.subtree_range(*roots.last().expect("non-empty")).end;
        let nodes = roots
            .iter()
            .map(|&r| index.subtree_range(r).len())
            .sum::<usize>();
        let min_root_depth = roots.iter().map(|&r| db.depth(r)).min().expect("non-empty");
        ShardInfo {
            roots,
            range: start..end,
            nodes,
            mass,
            min_root_depth,
        }
    }

    /// Number of shards (≤ the requested K; small documents may not
    /// decompose into K non-empty parts).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The K the partition was requested with.
    pub fn requested_k(&self) -> usize {
        self.requested_k
    }

    /// The shards, in preorder of their covering intervals.
    pub fn shards(&self) -> &[ShardInfo] {
        &self.shards
    }

    /// Whether `o` is a replicated spine node (a proper ancestor of
    /// some chunk root).
    #[inline]
    pub fn is_spine(&self, o: Oid) -> bool {
        self.spine[o.index() / 64] >> (o.index() % 64) & 1 == 1
    }

    /// Number of spine nodes.
    pub fn spine_len(&self) -> usize {
        self.spine_nodes
    }

    /// Total document mass (spine + shards).
    pub fn total_mass(&self) -> u64 {
        self.total_mass
    }

    /// The shard owning `o`, or `None` for spine nodes.
    pub fn shard_of(&self, o: Oid) -> Option<usize> {
        if self.is_spine(o) {
            return None;
        }
        let i = self
            .shards
            .partition_point(|s| s.range.end <= o.index())
            .min(self.shards.len() - 1);
        debug_assert!(self.shards[i].range.contains(&o.index()));
        Some(i)
    }
}

/// Mass of the spine nodes themselves (they carry no chunk).
fn spine_mass(db: &MonetDb, spine: &[u64]) -> u64 {
    let stats = db.partition_stats();
    let mut mass = 0u64;
    for (word_idx, &word) in spine.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let bit = bits.trailing_zeros() as usize;
            mass += stats.mass_of(word_idx * 64 + bit);
            bits &= bits - 1;
        }
    }
    mass
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_xml::parse;

    fn wide_db(sections: usize, leaves: usize) -> MonetDb {
        let mut xml = String::from("<r>");
        for s in 0..sections {
            xml.push_str("<sec>");
            for l in 0..leaves {
                xml.push_str(&format!("<p>text {s} {l}</p>"));
            }
            xml.push_str("</sec>");
        }
        xml.push_str("</r>");
        MonetDb::from_document(&parse(&xml).unwrap())
    }

    /// Every object is spine xor owned by exactly one shard, and
    /// `shard_of` agrees with the chunk-root subtree intervals.
    fn check_cover(db: &MonetDb, p: &PartitionMap) {
        let index = db.meet_index();
        let mut owned = vec![0usize; db.node_count()];
        for (i, s) in p.shards().iter().enumerate() {
            assert!(!s.roots.is_empty());
            for &r in &s.roots {
                assert!(!p.is_spine(r), "chunk roots are owned");
                for x in index.subtree_range(r) {
                    owned[x] += 1;
                    assert_eq!(p.shard_of(Oid::from_index(x)), Some(i));
                }
            }
        }
        for o in db.iter_oids() {
            if p.is_spine(o) {
                assert_eq!(owned[o.index()], 0, "{o}: spine nodes are unowned");
                assert_eq!(p.shard_of(o), None);
            } else {
                assert_eq!(owned[o.index()], 1, "{o}: owned exactly once");
            }
        }
        // Covering intervals ascend and stay disjoint.
        for w in p.shards().windows(2) {
            assert!(w[0].range.end <= w[1].range.start);
        }
        // Spine nodes are exactly the proper ancestors of chunk roots.
        for o in db.iter_oids() {
            let is_ancestor = p
                .shards()
                .iter()
                .flat_map(|s| s.roots.iter())
                .any(|&r| r != o && db.is_ancestor_or_self(o, r));
            assert_eq!(p.is_spine(o), is_ancestor, "{o}");
        }
    }

    #[test]
    fn k1_is_the_whole_document() {
        let db = wide_db(4, 4);
        let p = PartitionMap::build(&db, 1);
        assert_eq!(p.shard_count(), 1);
        assert_eq!(p.spine_len(), 0);
        assert_eq!(p.shards()[0].nodes, db.node_count());
        check_cover(&db, &p);
    }

    #[test]
    fn k4_covers_and_balances() {
        let db = wide_db(16, 8);
        let p = PartitionMap::build(&db, 4);
        assert_eq!(p.shard_count(), 4);
        check_cover(&db, &p);
        // Balanced within the chunk granularity: no shard more than
        // 2× the mean mass.
        let masses: Vec<u64> = p.shards().iter().map(|s| s.mass).collect();
        let mean = masses.iter().sum::<u64>() / masses.len() as u64;
        for m in &masses {
            assert!(*m <= 2 * mean, "masses {masses:?}");
        }
        // The spine is tiny relative to the document.
        assert!(p.spine_len() < db.node_count() / 4);
    }

    #[test]
    fn deep_chain_splits_along_the_chain() {
        // A single deep chain forces the spine through the chain: the
        // decomposition must still cover every node exactly once.
        let mut xml = String::from("<r>");
        for _ in 0..100 {
            xml.push_str("<e><leaf>x</leaf>");
        }
        for _ in 0..100 {
            xml.push_str("</e>");
        }
        xml.push_str("</r>");
        let db = MonetDb::from_document(&parse(&xml).unwrap());
        for k in [2, 3, 8] {
            let p = PartitionMap::build(&db, k);
            assert!(p.shard_count() >= 1 && p.shard_count() <= k);
            check_cover(&db, &p);
        }
    }

    #[test]
    fn oversized_k_degrades_gracefully() {
        let db = MonetDb::from_document(&parse("<r><a>x</a><b>y</b></r>").unwrap());
        let p = PartitionMap::build(&db, 64);
        assert!(p.shard_count() <= 64);
        check_cover(&db, &p);
        let single = MonetDb::from_document(&parse("<only/>").unwrap());
        let p = PartitionMap::build(&single, 8);
        assert_eq!(p.shard_count(), 1);
        check_cover(&single, &p);
    }

    #[test]
    fn cross_shard_lcas_land_on_the_spine() {
        let db = wide_db(12, 6);
        let p = PartitionMap::build(&db, 4);
        let index = db.meet_index();
        for a in db.iter_oids() {
            for b in db.iter_oids() {
                let (sa, sb) = (p.shard_of(a), p.shard_of(b));
                let cross = match (sa, sb) {
                    (Some(x), Some(y)) => x != y,
                    _ => true, // any pair involving a spine node
                };
                if cross {
                    // A cross-shard meet always resolves on replicated
                    // state: the LCA of nodes in two different chunks
                    // properly contains a chunk root, and the LCA of a
                    // spine node with anything is a spine ancestor-or-
                    // self of it.
                    let m = index.lca(a, b);
                    assert!(p.is_spine(m), "lca({a},{b}) = {m} not on spine");
                }
            }
        }
    }
}
