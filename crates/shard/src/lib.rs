//! # ncq-shard — preorder-interval sharded execution
//!
//! The meet operator works over preorder/postorder OID intervals, which
//! makes a document *naturally partitionable*: every subtree is a
//! contiguous OID range, so a shard is just an interval, and only the
//! (tiny) top of the tree — the **spine** — must be replicated to
//! resolve cross-shard meets. This crate turns the single-process
//! [`ncq_core::Database`] into that sharded layer:
//!
//! * [`PartitionMap`] cuts a document into K balanced shards on subtree
//!   boundaries, weighing node count plus posting mass, and marks the
//!   replicated spine (the ancestors of every chunk root);
//! * per-shard full-text postings are built by *restriction* of the
//!   global relations ([`ncq_fulltext::InvertedIndex::restrict`] /
//!   [`ncq_store::MonetDb::strings_in_range`]), so term lookups scatter
//!   only to the shards owning hits;
//! * [`ShardedDb`] serves the same `meet2` / `meet_sets` / `meet_multi`
//!   / `run_query` surface as [`ncq_core::Database`] — byte-identical
//!   answers, pinned by the golden suite and the randomized
//!   equivalence property tests — with per-shard meets running in
//!   parallel on a persistent worker pool and a gather sweep resolving
//!   cross-shard meets on the spine;
//! * [`ncq_core::MeetBackend`] is implemented, so `ncq-server` workers
//!   (`Server::start_backend`) and `ncq-query` evaluation dispatch to a
//!   sharded engine without changes.
//!
//! ```
//! use ncq_shard::ShardedDb;
//!
//! let sharded = ShardedDb::from_xml_str(
//!     "<bib><article><author>Ben Bit</author><year>1999</year></article></bib>",
//!     4,
//! ).unwrap();
//! let answers = sharded.meet_terms(&["Bit", "1999"]).unwrap();
//! assert_eq!(answers.results[0].tag, "article");
//! ```

pub mod forest;
pub mod partition;
mod pool;
pub mod sharded;
pub mod snapshot;

pub use forest::{
    open_catalog, open_catalog_remote, open_forest, open_forest_remote, sharded_corpus,
};
pub use partition::{PartitionMap, ShardInfo};
pub use sharded::ShardedDb;
