//! Snapshot codec for the shard partition map, and the sharded
//! engine's cold-start entry points.
//!
//! A sharded deployment persists one extra section on top of the
//! store/fulltext sections of [`ncq_core::Database`]: the
//! [`PartitionMap`] — chunk roots, covering preorder intervals, the
//! spine bitset and the mass accounting. Everything else a shard needs
//! (restricted postings, spine slices) is *derived* from the map plus
//! the global relations, so the section stays tiny while
//! [`ShardedDb::open_snapshot`] still skips the chunk decomposition
//! walk entirely.
//!
//! Legacy (v1/v2) layout of the `PARTITION` section (little-endian,
//! inside the checksummed container of [`ncq_store::snapshot`]):
//!
//! ```text
//! requested K (u32) · shard count (u32)
//! per shard:
//!   chunk roots (u32 count + u32 oids, preorder)
//!   covering interval start/end (u64, u64)
//!   owned nodes (u64) · owned mass (u64) · min root depth (u32)
//! spine bitset (u32 word count + u64 words)
//! spine node count (u64) · total mass (u64)
//! ```
//!
//! The v3 layout front-loads the scalars and shard metadata and stores
//! the two arrays — concatenated chunk roots and the spine bitset — as
//! aligned columns, so the (large, O(n/64)) spine is served zero-copy
//! from the mapped file:
//!
//! ```text
//! requested K · shard count · spine nodes · total mass
//!   · total roots · spine words                      (6 × u64)
//! per shard: root count · start · end · nodes · mass
//!   · min root depth                                 (6 × u64)
//! roots: u32[total roots]   concatenated, shard-major
//! spine: u64[spine words]
//! ```

use crate::partition::{PartitionMap, ShardInfo};
use crate::sharded::ShardedDb;
use ncq_core::Database;
use ncq_store::snapshot::{section, SnapshotError, SnapshotReader, SnapshotSource, SnapshotWriter};
use ncq_store::{MappedSnapshot, Oid, SnapshotWriterV3};
use std::path::Path;
use std::sync::Arc;

/// Structural checks shared by both decoders: shard intervals ascend,
/// stay disjoint and in range, chunk roots are preorder-sorted inside
/// their interval, the spine bitset is sized to the instance and its
/// popcount matches, and every object outside the covering intervals
/// is a spine node ([`PartitionMap::shard_of`] clamps its interval
/// search, so an unnoticed gap would silently attribute an object to a
/// shard that does not own it — it must be a typed error instead).
fn validate_partition(
    requested_k: usize,
    shards: &[ShardInfo],
    spine: &[u64],
    spine_nodes: usize,
    node_count: usize,
) -> Result<(), SnapshotError> {
    if requested_k == 0 || shards.is_empty() || shards.len() > requested_k {
        return Err(SnapshotError::Corrupt {
            context: "partition shard counts inconsistent",
        });
    }
    let mut prev_end = 0usize;
    for shard in shards {
        let (start, end) = (shard.range.start, shard.range.end);
        if shard.roots.is_empty()
            || start < prev_end
            || end <= start
            || end > node_count
            || shard.roots.first().is_some_and(|r| r.index() != start)
            || shard
                .roots
                .iter()
                .any(|r| r.index() < start || r.index() >= end)
            || shard.roots.windows(2).any(|w| w[0] >= w[1])
            || shard.nodes > end - start
        {
            return Err(SnapshotError::Corrupt {
                context: "partition shard interval invalid",
            });
        }
        prev_end = end;
    }
    if spine.len() != node_count.div_ceil(64)
        || spine_nodes != spine.iter().map(|w| w.count_ones() as usize).sum::<usize>()
    {
        return Err(SnapshotError::Corrupt {
            context: "partition spine bitset inconsistent",
        });
    }
    let is_spine = |o: usize| spine[o / 64] >> (o % 64) & 1 == 1;
    let mut cursor = 0usize;
    for shard in shards {
        if (cursor..shard.range.start).any(|o| !is_spine(o)) {
            return Err(SnapshotError::Corrupt {
                context: "partition leaves a non-spine object uncovered",
            });
        }
        cursor = shard.range.end;
    }
    if (cursor..node_count).any(|o| !is_spine(o)) {
        return Err(SnapshotError::Corrupt {
            context: "partition leaves a non-spine object uncovered",
        });
    }
    Ok(())
}

impl PartitionMap {
    /// Write the `PARTITION` section.
    pub fn encode_snapshot(&self, writer: &mut SnapshotWriter) {
        let mut s = writer.section(section::PARTITION);
        s.put_u32(self.requested_k as u32);
        s.put_u32(self.shards.len() as u32);
        for shard in &self.shards {
            s.put_u32_col(shard.roots.iter().map(|o| o.index() as u32));
            s.put_u64(shard.range.start as u64);
            s.put_u64(shard.range.end as u64);
            s.put_u64(shard.nodes as u64);
            s.put_u64(shard.mass);
            s.put_u32(shard.min_root_depth as u32);
        }
        s.put_u64_col(self.spine.iter().copied());
        s.put_u64(self.spine_nodes as u64);
        s.put_u64(self.total_mass);
    }

    /// Write the v3 `PARTITION` section: scalars and shard metadata up
    /// front, then the concatenated chunk roots and the spine bitset as
    /// aligned columns.
    pub fn encode_snapshot_v3(&self, writer: &mut SnapshotWriterV3) {
        let total_roots: usize = self.shards.iter().map(|s| s.roots.len()).sum();
        let mut s = writer.section(section::PARTITION);
        s.put_u64(self.requested_k as u64);
        s.put_u64(self.shards.len() as u64);
        s.put_u64(self.spine_nodes as u64);
        s.put_u64(self.total_mass);
        s.put_u64(total_roots as u64);
        s.put_u64(self.spine.len() as u64);
        for shard in &self.shards {
            s.put_u64(shard.roots.len() as u64);
            s.put_u64(shard.range.start as u64);
            s.put_u64(shard.range.end as u64);
            s.put_u64(shard.nodes as u64);
            s.put_u64(shard.mass);
            s.put_u64(shard.min_root_depth as u64);
        }
        let roots: Vec<u32> = self
            .shards
            .iter()
            .flat_map(|s| s.roots.iter().map(|o| o.index() as u32))
            .collect();
        s.put_col::<u32>(&roots);
        s.put_col::<u64>(&self.spine);
    }

    /// Read the `PARTITION` section back from a legacy snapshot,
    /// validating the structural invariants the executors build on.
    pub fn decode_snapshot(
        reader: &SnapshotReader,
        node_count: usize,
    ) -> Result<PartitionMap, SnapshotError> {
        let mut s = reader.section(section::PARTITION)?;
        let requested_k = s.get_u32("partition requested k")? as usize;
        let shard_count = s.get_u32("partition shard count")? as usize;
        if requested_k == 0 || shard_count == 0 || shard_count > requested_k {
            return Err(SnapshotError::Corrupt {
                context: "partition shard counts inconsistent",
            });
        }
        // Clamped: a shard entry spans ≥ 40 payload bytes, so an
        // inconsistent count fails typed instead of aborting on a
        // multi-gigabyte pre-allocation.
        let mut shards = Vec::with_capacity(shard_count.min(s.remaining() / 40));
        for _ in 0..shard_count {
            let roots_raw = s.get_u32_col("partition chunk roots")?;
            let start = s.get_u64("partition range start")? as usize;
            let end = s.get_u64("partition range end")? as usize;
            let nodes = s.get_u64("partition shard nodes")? as usize;
            let mass = s.get_u64("partition shard mass")?;
            let min_root_depth = s.get_u32("partition min root depth")? as usize;
            shards.push(ShardInfo {
                roots: roots_raw
                    .iter()
                    .map(|&r| Oid::from_index(r as usize))
                    .collect(),
                range: start..end,
                nodes,
                mass,
                min_root_depth,
            });
        }
        let spine = s.get_u64_col("partition spine bitset")?;
        let spine_nodes = s.get_u64("partition spine count")? as usize;
        let total_mass = s.get_u64("partition total mass")?;
        validate_partition(requested_k, &shards, &spine, spine_nodes, node_count)?;
        Ok(PartitionMap {
            requested_k,
            shards,
            spine: spine.into(),
            spine_nodes,
            total_mass,
        })
    }

    /// Read the v3 `PARTITION` section: shard metadata is materialized
    /// (it is O(K)), the spine bitset stays a zero-copy view. Read
    /// through [`MappedSnapshot::section_verified`] — the section is
    /// fully scanned by the validation below anyway, so the checksum
    /// rides along for free.
    pub fn decode_snapshot_v3(
        snap: &MappedSnapshot,
        node_count: usize,
    ) -> Result<PartitionMap, SnapshotError> {
        let mut s = snap.section_verified(section::PARTITION)?;
        let requested_k = s.get_u64()? as usize;
        let shard_count = s.get_u64()? as usize;
        let spine_nodes = s.get_u64()? as usize;
        let total_mass = s.get_u64()?;
        let total_roots = s.get_u64()? as usize;
        let spine_words = s.get_u64()? as usize;
        if requested_k == 0 || shard_count == 0 || shard_count > requested_k {
            return Err(SnapshotError::Corrupt {
                context: "partition shard counts inconsistent",
            });
        }
        struct Meta {
            roots: usize,
            start: usize,
            end: usize,
            nodes: usize,
            mass: u64,
            min_root_depth: usize,
        }
        // Clamped like the legacy path: a shard entry is 48 bytes.
        let mut metas = Vec::with_capacity(shard_count.min(s.remaining() / 48));
        for _ in 0..shard_count {
            metas.push(Meta {
                roots: s.get_u64()? as usize,
                start: s.get_u64()? as usize,
                end: s.get_u64()? as usize,
                nodes: s.get_u64()? as usize,
                mass: s.get_u64()?,
                min_root_depth: s.get_u64()? as usize,
            });
        }
        let roots = s.take_col::<u32>(total_roots)?;
        let spine = s.take_col::<u64>(spine_words)?;
        if !s.at_end() {
            return Err(SnapshotError::Corrupt {
                context: "partition section has trailing bytes",
            });
        }
        let mut shards = Vec::with_capacity(metas.len());
        let mut at = 0usize;
        for m in &metas {
            // Checked walk: a lying per-shard count must fail typed,
            // never slice out of bounds.
            let next = at
                .checked_add(m.roots)
                .filter(|&n| n <= total_roots)
                .ok_or(SnapshotError::Corrupt {
                    context: "partition root counts inconsistent",
                })?;
            shards.push(ShardInfo {
                roots: roots[at..next]
                    .iter()
                    .map(|&r| Oid::from_index(r as usize))
                    .collect(),
                range: m.start..m.end,
                nodes: m.nodes,
                mass: m.mass,
                min_root_depth: m.min_root_depth,
            });
            at = next;
        }
        if at != total_roots {
            return Err(SnapshotError::Corrupt {
                context: "partition root counts inconsistent",
            });
        }
        validate_partition(requested_k, &shards, &spine, spine_nodes, node_count)?;
        Ok(PartitionMap {
            requested_k,
            shards,
            spine,
            spine_nodes,
            total_mass,
        })
    }
}

impl ShardedDb {
    /// Persist the sharded engine: the database sections plus the
    /// partition map, in the v3 zero-copy layout. Restricted postings
    /// are not written — they are re-derived from the map at load (a
    /// linear filter), keeping the file identical to the single-engine
    /// snapshot plus one small section, and keeping saves from any
    /// engine byte-deterministic.
    pub fn save_snapshot(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let mut writer = self.database().encode_snapshot_v3();
        self.partition().encode_snapshot_v3(&mut writer);
        writer.write_to(path.as_ref())
    }

    /// Cold-start a sharded engine from a snapshot of either
    /// generation. When the snapshot carries a partition map built for
    /// the same requested `k`, the stored cut is reused; otherwise
    /// (different `k`, or a snapshot saved from a single engine) the
    /// partition is rebuilt from the loaded stats — still without any
    /// parse or index preprocess, since the meet index and mass prefix
    /// sums arrive pre-computed (for v3, zero-copy out of the map).
    pub fn open_snapshot(path: impl AsRef<Path>, k: usize) -> Result<ShardedDb, SnapshotError> {
        ShardedDb::from_source(&SnapshotSource::open(path.as_ref())?, k)
    }

    /// Cold-start a sharded engine from in-memory snapshot bytes — the
    /// path the forest catalog takes after verifying a corpus file
    /// against its manifest checksum (the bytes are already read, so
    /// re-opening the file would double the IO).
    pub fn from_snapshot_bytes(bytes: Vec<u8>, k: usize) -> Result<ShardedDb, SnapshotError> {
        ShardedDb::from_source(&SnapshotSource::from_bytes(bytes)?, k)
    }

    /// Cold-start from an already-opened snapshot of either generation
    /// — the shared dispatch behind the file and byte entry points,
    /// public so forest openers can route one source to either engine
    /// shape.
    pub fn from_source(source: &SnapshotSource, k: usize) -> Result<ShardedDb, SnapshotError> {
        let db = Arc::new(Database::decode_from(source)?);
        let workers = crate::sharded::default_workers(k);
        if source.has_section(section::PARTITION) {
            let n = db.store().node_count();
            let partition = match source {
                SnapshotSource::Legacy(reader) => PartitionMap::decode_snapshot(reader, n)?,
                SnapshotSource::Mapped(snap) => PartitionMap::decode_snapshot_v3(snap, n)?,
            };
            if partition.requested_k() == k {
                return Ok(ShardedDb::with_partition(db, partition, workers));
            }
        }
        Ok(ShardedDb::with_workers(db, k, workers))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_xml::parse;

    fn wide_xml(sections: usize, leaves: usize) -> String {
        let mut xml = String::from("<r>");
        for s in 0..sections {
            xml.push_str("<sec>");
            for l in 0..leaves {
                xml.push_str(&format!("<p>text {s} {l}</p>"));
            }
            xml.push_str("</sec>");
        }
        xml.push_str("</r>");
        xml
    }

    fn db() -> Database {
        Database::from_document(&parse(&wide_xml(12, 6)).unwrap())
    }

    #[test]
    fn partition_map_round_trips_exactly() {
        let db = db();
        let map = PartitionMap::build(db.store(), 4);
        let mut w = db.encode_snapshot();
        map.encode_snapshot(&mut w);
        let r = SnapshotReader::from_bytes(w.to_bytes()).unwrap();
        let loaded = PartitionMap::decode_snapshot(&r, db.store().node_count()).unwrap();
        assert_eq!(loaded.requested_k(), 4);
        assert_eq!(loaded.shard_count(), map.shard_count());
        assert_eq!(loaded.spine_len(), map.spine_len());
        assert_eq!(loaded.total_mass(), map.total_mass());
        for (a, b) in loaded.shards().iter().zip(map.shards()) {
            assert_eq!(a.roots, b.roots);
            assert_eq!(a.range, b.range);
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.mass, b.mass);
            assert_eq!(a.min_root_depth, b.min_root_depth);
        }
        for o in db.store().iter_oids() {
            assert_eq!(loaded.is_spine(o), map.is_spine(o));
            assert_eq!(loaded.shard_of(o), map.shard_of(o));
        }
    }

    #[test]
    fn sharded_snapshot_cold_start_matches_the_live_engine() {
        let dir = std::env::temp_dir().join("ncq-snapshot-shard-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wide.ncq");

        let db = db();
        let sharded = ShardedDb::new(db.clone(), 4);
        sharded.save_snapshot(&path).unwrap();

        // Same K: the stored cut is reused.
        let loaded = ShardedDb::open_snapshot(&path, 4).unwrap();
        assert_eq!(loaded.shard_count(), sharded.shard_count());
        assert_eq!(
            loaded.partition().spine_len(),
            sharded.partition().spine_len()
        );
        let a = sharded.meet_terms(&["text", "3"]).unwrap();
        let b = loaded.meet_terms(&["text", "3"]).unwrap();
        assert_eq!(a.to_detailed_xml(), b.to_detailed_xml());
        // And both agree with the unsharded engine.
        let c = db.meet_terms(&["text", "3"]).unwrap();
        assert_eq!(a.to_detailed_xml(), c.to_detailed_xml());

        // Different K: the partition is rebuilt, answers unchanged.
        let rek = ShardedDb::open_snapshot(&path, 2).unwrap();
        assert_eq!(rek.partition().requested_k(), 2);
        assert_eq!(
            rek.meet_terms(&["text", "3"]).unwrap().to_detailed_xml(),
            a.to_detailed_xml()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn coverage_gaps_over_non_spine_objects_are_typed() {
        // Hand-build a PARTITION section whose two shards leave oids
        // 5..10 uncovered with an empty spine: `shard_of` would clamp
        // such an oid into the wrong shard, so decode must refuse.
        let node_count = 15usize;
        let mut w = SnapshotWriter::new();
        {
            let mut s = w.section(section::PARTITION);
            s.put_u32(2); // requested k
            s.put_u32(2); // shard count
            for (start, end) in [(0u64, 5u64), (10, 15)] {
                s.put_u32_col(std::iter::once(start as u32)); // roots
                s.put_u64(start);
                s.put_u64(end);
                s.put_u64(end - start); // nodes
                s.put_u64(end - start); // mass
                s.put_u32(1); // min root depth
            }
            s.put_u64_col(std::iter::once(0u64)); // empty spine bitset
            s.put_u64(0); // spine nodes
            s.put_u64(15); // total mass
        }
        let r = SnapshotReader::from_bytes(w.to_bytes()).unwrap();
        assert!(matches!(
            PartitionMap::decode_snapshot(&r, node_count),
            Err(SnapshotError::Corrupt {
                context: "partition leaves a non-spine object uncovered"
            })
        ));
    }

    #[test]
    fn truncated_partition_section_is_typed() {
        let db = db();
        let map = PartitionMap::build(db.store(), 4);
        let mut w = SnapshotWriter::new();
        map.encode_snapshot(&mut w);
        let bytes = w.to_bytes();
        // Chop the payload tail and re-frame: the checksum must catch it.
        for cut in 1..64 {
            let mut corrupt = bytes.clone();
            corrupt.truncate(bytes.len() - cut);
            assert!(SnapshotReader::from_bytes(corrupt).is_err());
        }
        // A wrong node count is a Corrupt, not a panic.
        let r = SnapshotReader::from_bytes(bytes).unwrap();
        assert!(matches!(
            PartitionMap::decode_snapshot(&r, db.store().node_count() / 2),
            Err(SnapshotError::Corrupt { .. })
        ));
    }
}
