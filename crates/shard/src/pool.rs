//! A small persistent worker pool for scatter phases.
//!
//! Same idiom as `ncq-server`'s worker loop — a `Mutex<VecDeque>` of
//! jobs with a `Condvar` — but scoped to fan-out/fan-in: a scatter
//! submits one job per shard and blocks until all of them answered.
//! Persistent threads (rather than per-query spawns) keep the per-query
//! scatter overhead at two mutex hops per shard, which is what lets the
//! sharded facade stay at parity with the single database even at K=1.
//!
//! The scattering caller **helps**: instead of parking on the result
//! channel it drains the job queue inline until empty, then waits only
//! for jobs a worker already claimed. On a single-core host the whole
//! scatter degenerates to plain function calls (no context switches);
//! on a multi-core host the caller contributes one worker's worth of
//! throughput.

use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread;

type Job = Box<dyn FnOnce() + Send>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    work: Condvar,
}

/// The scatter pool. Dropping it drains queued jobs and joins the
/// workers.
pub(crate) struct Pool {
    shared: Arc<PoolShared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Pool {
    /// Spawn `workers` threads (minimum 1).
    pub(crate) fn new(workers: usize) -> Pool {
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let workers = (0..workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("ncq-shard-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn shard worker")
            })
            .collect();
        Pool { shared, workers }
    }

    /// Number of worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Run every task, in parallel across the workers *and the calling
    /// thread*, and return their results in task order. Blocks until
    /// the last task finished.
    pub(crate) fn scatter<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = tasks.len();
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            for (i, task) in tasks.into_iter().enumerate() {
                let tx = tx.clone();
                state.queue.push_back(Box::new(move || {
                    // A dropped receiver cannot happen while we block on
                    // recv below; ignore the impossible error.
                    let _ = tx.send((i, task()));
                }));
            }
        }
        drop(tx);
        self.shared.work.notify_all();

        // Help: run queued jobs inline until the queue drains, then
        // wait for whatever a worker thread already claimed.
        loop {
            let job = {
                let mut state = self.shared.state.lock().expect("pool lock");
                state.queue.pop_front()
            };
            match job {
                Some(job) => job(),
                None => break,
            }
        }

        let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, value) = rx.recv().expect("scatter task completed");
            slots[i] = Some(value);
        }
        slots
            .into_iter()
            .map(|s| s.expect("all slots filled"))
            .collect()
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool lock");
            state.shutdown = true;
        }
        self.shared.work.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work.wait(state).expect("pool lock");
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scatter_returns_results_in_task_order() {
        let pool = Pool::new(4);
        assert_eq!(pool.workers(), 4);
        let tasks: Vec<_> = (0..32).map(|i| move || i * 10).collect();
        assert_eq!(
            pool.scatter(tasks),
            (0..32).map(|i| i * 10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn scatter_runs_tasks_concurrently() {
        let pool = Pool::new(4);
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..8)
            .map(|_| {
                let running = Arc::clone(&running);
                let peak = Arc::clone(&peak);
                move || {
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    thread::sleep(std::time::Duration::from_millis(20));
                    running.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        pool.scatter(tasks);
        assert!(peak.load(Ordering::SeqCst) > 1, "tasks overlapped");
    }

    #[test]
    fn sequential_scatters_reuse_the_pool() {
        let pool = Pool::new(2);
        for round in 0..10 {
            let got = pool.scatter((0..2).map(|i| move || round + i).collect::<Vec<_>>());
            assert_eq!(got, vec![round, round + 1]);
        }
    }

    #[test]
    fn empty_scatter_is_a_noop() {
        let pool = Pool::new(1);
        let got: Vec<usize> = pool.scatter(Vec::<fn() -> usize>::new());
        assert!(got.is_empty());
    }
}
