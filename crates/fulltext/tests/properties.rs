//! Property tests: the inverted index agrees with naive scans.

use ncq_fulltext::{search, HitSet, InvertedIndex};
use ncq_store::MonetDb;
use ncq_xml::Document;
use proptest::prelude::*;

/// Random flat-ish documents with text drawn from a small vocabulary so
/// that collisions (the interesting case) are frequent.
fn doc_strategy() -> impl Strategy<Value = Document> {
    let word = prop::sample::select(vec![
        "alpha", "beta", "gamma", "delta", "alpha beta", "Beta Gamma", "x1", "x2", "1999",
    ]);
    prop::collection::vec((word, 0u8..3), 1..40).prop_map(|items| {
        let mut doc = Document::new("root");
        let mut sections: Vec<ncq_xml::NodeId> = vec![doc.root()];
        for (text, kind) in items {
            match kind {
                0 => {
                    let s = doc.add_element(doc.root(), "section");
                    sections.push(s);
                }
                1 => {
                    let parent = *sections.last().unwrap();
                    let item = doc.add_element(parent, "item");
                    doc.add_text(item, text);
                }
                _ => {
                    let parent = *sections.last().unwrap();
                    let item = doc.add_element(parent, "item");
                    doc.set_attribute(item, "note", text);
                }
            }
        }
        doc
    })
}

/// Naive reference: scan every string association for a predicate.
fn naive_hits(db: &MonetDb, pred: impl Fn(&str) -> bool) -> HitSet {
    let mut hits = HitSet::new();
    for p in db.string_paths() {
        for (owner, text) in db.strings_of(p) {
            if pred(text) {
                hits.insert(p, *owner);
            }
        }
    }
    hits
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Word hits from the index equal a naive token scan.
    #[test]
    fn word_hits_match_naive_scan(doc in doc_strategy(), term in prop::sample::select(vec!["alpha", "beta", "gamma", "1999", "absent"])) {
        let db = MonetDb::from_document(&doc);
        let idx = InvertedIndex::build(&db);
        let from_index = search::word_hits(&idx, term);
        let reference = naive_hits(&db, |s| {
            ncq_fulltext::tokenize::tokens(s).any(|t| t == term)
        });
        prop_assert_eq!(from_index, reference);
    }

    /// Substring hits equal a naive case-insensitive contains scan.
    #[test]
    fn substring_hits_match_naive_scan(doc in doc_strategy(), needle in prop::sample::select(vec!["alp", "ta", "BETA", "99", "zzz"])) {
        let db = MonetDb::from_document(&doc);
        let from_scan = search::substring_hits(&db, needle);
        let reference = naive_hits(&db, |s| s.to_lowercase().contains(&needle.to_lowercase()));
        prop_assert_eq!(from_scan, reference);
    }

    /// Phrase hits are a subset of each word's hits, and each phrase hit
    /// really contains the normalized phrase.
    #[test]
    fn phrase_hits_are_sound(doc in doc_strategy()) {
        let db = MonetDb::from_document(&doc);
        let idx = InvertedIndex::build(&db);
        let phrase = "alpha beta";
        let hits = search::phrase_hits(&db, &idx, phrase);
        let alpha = search::word_hits(&idx, "alpha");
        let beta = search::word_hits(&idx, "beta");
        for (p, o) in hits.iter() {
            prop_assert!(alpha.contains(p, o));
            prop_assert!(beta.contains(p, o));
            let text = db.string_value(p, o).unwrap();
            let norm: Vec<String> = ncq_fulltext::tokenize::tokens(text).collect();
            prop_assert!(norm.join(" ").contains("alpha beta"), "text {text:?}");
        }
    }

    /// The index posting count equals the number of (association, token)
    /// incidences with per-association dedup.
    #[test]
    fn posting_count_is_consistent(doc in doc_strategy()) {
        let db = MonetDb::from_document(&doc);
        let idx = InvertedIndex::build(&db);
        let mut expected = 0usize;
        for p in db.string_paths() {
            for (_, text) in db.strings_of(p) {
                let mut toks: Vec<String> = ncq_fulltext::tokenize::tokens(text).collect();
                toks.sort();
                toks.dedup();
                expected += toks.len();
            }
        }
        prop_assert_eq!(idx.posting_count(), expected);
    }
}
