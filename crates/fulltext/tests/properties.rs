//! Randomized tests: the inverted index agrees with naive scans.
//!
//! Seeded loops over a deterministic PRNG stand in for proptest (the
//! offline build cannot fetch it); failures print the seed.

use ncq_fulltext::{search, HitSet, InvertedIndex};
use ncq_store::MonetDb;
use ncq_xml::Document;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const WORDS: [&str; 9] = [
    "alpha",
    "beta",
    "gamma",
    "delta",
    "alpha beta",
    "Beta Gamma",
    "x1",
    "x2",
    "1999",
];

/// Random flat-ish documents with text drawn from a small vocabulary so
/// that collisions (the interesting case) are frequent.
fn random_doc(rng: &mut StdRng) -> Document {
    let mut doc = Document::new("root");
    let mut sections: Vec<ncq_xml::NodeId> = vec![doc.root()];
    let items = rng.random_range(1usize..40);
    for _ in 0..items {
        let text = WORDS[rng.random_range(0..WORDS.len())];
        match rng.random_range(0u8..3) {
            0 => {
                let s = doc.add_element(doc.root(), "section");
                sections.push(s);
            }
            1 => {
                let parent = *sections.last().unwrap();
                let item = doc.add_element(parent, "item");
                doc.add_text(item, text);
            }
            _ => {
                let parent = *sections.last().unwrap();
                let item = doc.add_element(parent, "item");
                doc.set_attribute(item, "note", text);
            }
        }
    }
    doc
}

/// Naive reference: scan every string association for a predicate.
fn naive_hits(db: &MonetDb, pred: impl Fn(&str) -> bool) -> HitSet {
    let mut hits = HitSet::new();
    for p in db.string_paths() {
        for (owner, text) in db.strings_of(p) {
            if pred(text) {
                hits.insert(p, *owner);
            }
        }
    }
    hits
}

const CASES: u64 = 128;

/// Word hits from the index equal a naive token scan.
#[test]
fn word_hits_match_naive_scan() {
    const TERMS: [&str; 5] = ["alpha", "beta", "gamma", "1999", "absent"];
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let db = MonetDb::from_document(&random_doc(&mut rng));
        let idx = InvertedIndex::build(&db);
        let term = TERMS[rng.random_range(0..TERMS.len())];
        let from_index = search::word_hits(&idx, term);
        let reference = naive_hits(&db, |s| {
            ncq_fulltext::tokenize::tokens(s).any(|t| t == term)
        });
        assert_eq!(from_index, reference, "seed {seed} term {term}");
    }
}

/// Substring hits equal a naive case-insensitive contains scan.
#[test]
fn substring_hits_match_naive_scan() {
    const NEEDLES: [&str; 5] = ["alp", "ta", "BETA", "99", "zzz"];
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1 << 32 | seed);
        let db = MonetDb::from_document(&random_doc(&mut rng));
        let needle = NEEDLES[rng.random_range(0..NEEDLES.len())];
        let from_scan = search::substring_hits(&db, needle);
        let reference = naive_hits(&db, |s| s.to_lowercase().contains(&needle.to_lowercase()));
        assert_eq!(from_scan, reference, "seed {seed} needle {needle}");
    }
}

/// Phrase hits are a subset of each word's hits, and each phrase hit
/// really contains the normalized phrase.
#[test]
fn phrase_hits_are_sound() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2 << 32 | seed);
        let db = MonetDb::from_document(&random_doc(&mut rng));
        let idx = InvertedIndex::build(&db);
        let phrase = "alpha beta";
        let hits = search::phrase_hits(&db, &idx, phrase);
        let alpha = search::word_hits(&idx, "alpha");
        let beta = search::word_hits(&idx, "beta");
        for (p, o) in hits.iter() {
            assert!(alpha.contains(p, o), "seed {seed}");
            assert!(beta.contains(p, o), "seed {seed}");
            let text = db.string_value(p, o).unwrap();
            let norm: Vec<String> = ncq_fulltext::tokenize::tokens(text).collect();
            assert!(
                norm.join(" ").contains("alpha beta"),
                "seed {seed} {text:?}"
            );
        }
    }
}

/// The index posting count equals the number of (association, token)
/// incidences with per-association dedup.
#[test]
fn posting_count_is_consistent() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3 << 32 | seed);
        let db = MonetDb::from_document(&random_doc(&mut rng));
        let idx = InvertedIndex::build(&db);
        let mut expected = 0usize;
        for p in db.string_paths() {
            for (_, text) in db.strings_of(p) {
                let mut toks: Vec<String> = ncq_fulltext::tokenize::tokens(text).collect();
                toks.sort();
                toks.dedup();
                expected += toks.len();
            }
        }
        assert_eq!(idx.posting_count(), expected, "seed {seed}");
    }
}

/// The galloping posting intersection equals a naive set intersection,
/// for every word pair of the vocabulary.
#[test]
fn galloping_intersection_matches_naive() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4 << 32 | seed);
        let db = MonetDb::from_document(&random_doc(&mut rng));
        let idx = InvertedIndex::build(&db);
        for a in ["alpha", "beta", "gamma", "1999"] {
            for b in ["alpha", "beta", "x1", "absent"] {
                let la = idx.postings(a);
                let lb = idx.postings(b);
                let fast = ncq_fulltext::intersect(la, lb);
                let slow: Vec<_> = la.iter().filter(|p| lb.contains(p)).copied().collect();
                assert_eq!(fast, slow, "seed {seed} {a} ∩ {b}");
            }
        }
    }
}
