//! Galloping (exponential-search) intersection of sorted posting lists.
//!
//! Posting lists are kept sorted by `(path, owner)` — document order
//! within each relation, relations in interning order — so multi-term
//! conjunctions are sort-merge problems. When list sizes are skewed
//! (the common case: one rare term, one frequent term), a linear merge
//! wastes work on the long list; *galloping* advances through it in
//! doubling strides and finishes the probe with a binary search, giving
//! O(short · log(long / short)) instead of O(short + long).
//!
//! The same doc-order sortedness is what the meet plane sweeps in
//! `ncq-core` rely on; this module is the full-text side of that
//! contract.

use crate::index::Posting;
use ncq_store::Oid;

/// Smallest index `i` in `list[from..]` with `list[i] >= target`,
/// found by doubling strides then binary search within the last stride.
#[inline]
fn gallop_to(list: &[Posting], from: usize, target: Posting) -> usize {
    let mut step = 1usize;
    let mut lo = from;
    let mut hi = from;
    while hi < list.len() && list[hi] < target {
        lo = hi + 1;
        hi += step;
        step *= 2;
    }
    let hi = hi.min(list.len());
    lo + list[lo..hi].partition_point(|&p| p < target)
}

/// Intersection of two sorted, deduplicated posting lists.
///
/// Both lists are sorted by `(path, owner)`, so the intersection
/// decomposes into per-path segments whose owner columns are sorted,
/// strictly increasing `u32` runs — exactly the shape of
/// `ncq_simd::intersect_u32_into`. When a vector mode is active the
/// common segments go through the compare-exchange kernel (with the
/// gallop shortcut built into it for skewed stretches); under
/// `NCQ_SIMD=off` (or off x86-64) the original galloping merge runs
/// unchanged. Output is bit-identical either way: segments are visited
/// in path order and owners emitted in ascending order within each.
///
/// Short lists stay on the scalar merge even in vector mode: the owner
/// columns have to be copied out of the `(path, owner)` structs before
/// the kernel can see them, and below ~1k postings that copy costs
/// more than the lanes win back.
pub fn intersect(a: &[Posting], b: &[Posting]) -> Vec<Posting> {
    const VECTOR_MIN: usize = 1024;
    if a.len() + b.len() < VECTOR_MIN || ncq_simd::mode() == ncq_simd::Mode::Scalar {
        return intersect_scalar(a, b);
    }
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    let mut owners_a: Vec<u32> = Vec::new();
    let mut owners_b: Vec<u32> = Vec::new();
    let mut hits: Vec<u32> = Vec::new();
    while i < a.len() && j < b.len() {
        match a[i].path.cmp(&b[j].path) {
            std::cmp::Ordering::Less => {
                let target = Posting {
                    path: b[j].path,
                    owner: Oid::ROOT,
                };
                i = gallop_to(a, i + 1, target);
            }
            std::cmp::Ordering::Greater => {
                let target = Posting {
                    path: a[i].path,
                    owner: Oid::ROOT,
                };
                j = gallop_to(b, j + 1, target);
            }
            std::cmp::Ordering::Equal => {
                let path = a[i].path;
                let ea = i + a[i..].partition_point(|p| p.path == path);
                let eb = j + b[j..].partition_point(|p| p.path == path);
                owners_a.clear();
                ncq_simd::unpack_hi_u32(as_pairs(&a[i..ea]), &mut owners_a);
                owners_b.clear();
                ncq_simd::unpack_hi_u32(as_pairs(&b[j..eb]), &mut owners_b);
                hits.clear();
                ncq_simd::intersect_u32_into(&owners_a, &owners_b, &mut hits);
                out.extend(hits.iter().map(|&owner| Posting {
                    path,
                    owner: Oid::from_raw(owner),
                }));
                i = ea;
                j = eb;
            }
        }
    }
    out
}

/// View a posting segment as the `[path, owner]` pairs the decode
/// kernel reads. Sound because `Posting` is `repr(C)` over two
/// `repr(transparent)` `u32` newtypes (checked below).
fn as_pairs(seg: &[Posting]) -> &[[u32; 2]] {
    const _: () =
        assert!(std::mem::size_of::<Posting>() == 8 && std::mem::align_of::<Posting>() == 4);
    unsafe { std::slice::from_raw_parts(seg.as_ptr().cast(), seg.len()) }
}

/// The scalar path: gallop through whichever side is currently ahead.
fn intersect_scalar(a: &[Posting], b: &[Posting]) -> Vec<Posting> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i = gallop_to(a, i + 1, b[j]),
            std::cmp::Ordering::Greater => j = gallop_to(b, j + 1, a[i]),
        }
    }
    out
}

/// Intersection of arbitrarily many sorted posting lists, smallest list
/// first so every later pass shrinks the candidate set fastest.
pub fn intersect_all(lists: &[&[Posting]]) -> Vec<Posting> {
    let Some(&first) = lists.iter().min_by_key(|l| l.len()) else {
        return Vec::new();
    };
    let mut acc: Vec<Posting> = first.to_vec();
    let mut rest: Vec<&&[Posting]> = lists
        .iter()
        .filter(|l| !std::ptr::eq(l.as_ptr(), first.as_ptr()))
        .collect();
    rest.sort_by_key(|l| l.len());
    for list in rest {
        if acc.is_empty() {
            break;
        }
        acc = intersect(&acc, list);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_store::{Oid, PathId};

    fn p(path: usize, owner: usize) -> Posting {
        Posting {
            path: PathId::from_index(path),
            owner: Oid::from_index(owner),
        }
    }

    /// Reference linear intersection.
    fn slow(a: &[Posting], b: &[Posting]) -> Vec<Posting> {
        a.iter().filter(|x| b.contains(x)).copied().collect()
    }

    #[test]
    fn agrees_with_linear_merge() {
        let a: Vec<Posting> = (0..50).map(|i| p(i % 3, i * 2)).collect();
        let mut a = a;
        a.sort_unstable();
        let b: Vec<Posting> = (0..200).map(|i| p(i % 3, i)).collect();
        let mut b = b;
        b.sort_unstable();
        b.dedup();
        a.dedup();
        assert_eq!(intersect(&a, &b), slow(&a, &b));
        assert_eq!(intersect(&b, &a), slow(&a, &b));
    }

    #[test]
    fn skewed_lists_intersect_correctly() {
        let rare = vec![p(0, 7), p(1, 1000)];
        let frequent: Vec<Posting> = (0..5000).map(|i| p(0, i)).collect();
        let both = intersect(&rare, &frequent);
        assert_eq!(both, vec![p(0, 7)]);
    }

    #[test]
    fn empty_and_disjoint_inputs() {
        assert!(intersect(&[], &[p(0, 1)]).is_empty());
        assert!(intersect(&[p(0, 1)], &[]).is_empty());
        assert!(intersect(&[p(0, 1)], &[p(0, 2)]).is_empty());
    }

    #[test]
    fn multi_way_starts_from_the_rarest() {
        let a: Vec<Posting> = (0..100).map(|i| p(0, i)).collect();
        let b: Vec<Posting> = (0..100).filter(|i| i % 2 == 0).map(|i| p(0, i)).collect();
        let c = vec![p(0, 4), p(0, 5), p(0, 6)];
        let out = intersect_all(&[&a, &b, &c]);
        assert_eq!(out, vec![p(0, 4), p(0, 6)]);
        assert!(intersect_all(&[]).is_empty());
        assert_eq!(intersect_all(&[&c]), c);
    }

    #[test]
    fn vector_and_scalar_paths_agree() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let mk = |rng: &mut StdRng, n: usize| {
            let mut v: Vec<Posting> = (0..n)
                .map(|_| p(rng.random_range(0..4), rng.random_range(0..4000)))
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        for round in 0..40 {
            // Alternate below and above the wrapper's short-list
            // cutoff so both the scalar shortcut and the kernel path
            // are exercised.
            let cap = if round % 2 == 0 { 150 } else { 1500 };
            let la = rng.random_range(0..cap);
            let lb = rng.random_range(0..cap);
            let a = mk(&mut rng, la);
            let b = mk(&mut rng, lb);
            // Whatever the ambient dispatch mode, the public entry must
            // match the scalar merge bit for bit.
            assert_eq!(intersect(&a, &b), intersect_scalar(&a, &b));
            assert_eq!(intersect(&a, &b), slow(&a, &b));
        }
    }

    #[test]
    fn gallop_lands_on_first_not_less() {
        let list: Vec<Posting> = (0..64).map(|i| p(0, i * 3)).collect();
        for target in 0..200 {
            let t = p(0, target);
            let i = gallop_to(&list, 0, t);
            assert!(list[..i].iter().all(|&x| x < t));
            assert!(list[i..].iter().all(|&x| x >= t));
        }
    }
}
