//! Thesaurus-based query broadening (paper §4).
//!
//! > "thesauri are a promising tool to help a user find interesting
//! > results, especially to broaden a search that returned too few
//! > answers."
//!
//! A [`Thesaurus`] maps a term to its synonyms; [`expanded_hits`] unions
//! the hit sets of the whole synonym group, and the meet operator then
//! works on the broadened input unchanged.

use crate::hits::HitSet;
use crate::index::InvertedIndex;
use crate::search::term_hits;
use crate::tokenize::fold;
use ncq_store::MonetDb;
use std::collections::HashMap;

/// A symmetric synonym table (case-folded).
#[derive(Debug, Clone, Default)]
pub struct Thesaurus {
    /// term → synonym-group id
    group_of: HashMap<String, usize>,
    /// group id → member terms
    groups: Vec<Vec<String>>,
}

impl Thesaurus {
    /// An empty thesaurus (expansion is the identity).
    pub fn new() -> Thesaurus {
        Thesaurus::default()
    }

    /// Declare the given terms synonymous (merges groups when terms are
    /// already known).
    pub fn add_synonyms<S: AsRef<str>>(&mut self, terms: &[S]) {
        let folded: Vec<String> = terms.iter().map(|t| fold(t.as_ref())).collect();
        // Find an existing group among the terms.
        let existing: Vec<usize> = folded
            .iter()
            .filter_map(|t| self.group_of.get(t).copied())
            .collect();
        let target = existing.first().copied().unwrap_or_else(|| {
            self.groups.push(Vec::new());
            self.groups.len() - 1
        });
        // Merge all other groups into the target.
        for &g in &existing {
            if g != target {
                let members = std::mem::take(&mut self.groups[g]);
                for m in members {
                    self.group_of.insert(m.clone(), target);
                    self.groups[target].push(m);
                }
            }
        }
        for t in folded {
            self.group_of.insert(t.clone(), target);
            if !self.groups[target].contains(&t) {
                self.groups[target].push(t);
            }
        }
    }

    /// The synonym group of `term`, always containing the (folded) term
    /// itself, the term first.
    pub fn expand(&self, term: &str) -> Vec<String> {
        let folded = fold(term);
        let mut out = vec![folded.clone()];
        if let Some(&g) = self.group_of.get(&folded) {
            for m in &self.groups[g] {
                if *m != folded {
                    out.push(m.clone());
                }
            }
        }
        out
    }

    /// Number of distinct known terms.
    pub fn term_count(&self) -> usize {
        self.group_of.len()
    }
}

/// Hits for `term` broadened by the thesaurus: the union over the synonym
/// group.
pub fn expanded_hits(
    db: &MonetDb,
    index: &InvertedIndex,
    thesaurus: &Thesaurus,
    term: &str,
) -> HitSet {
    let mut hits = HitSet::new();
    for t in thesaurus.expand(term) {
        hits.union(&term_hits(db, index, &t));
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_xml::parse;

    fn setup() -> (MonetDb, InvertedIndex) {
        let db = MonetDb::from_document(
            &parse(
                r#"<bib>
                     <article><title>Databases for Beginners</title><year>1999</year></article>
                     <article><title>DBMS Internals</title><year>1998</year></article>
                     <article><title>Storage Systems</title><year>1997</year></article>
                   </bib>"#,
            )
            .unwrap(),
        );
        let idx = InvertedIndex::build(&db);
        (db, idx)
    }

    #[test]
    fn empty_thesaurus_is_identity() {
        let t = Thesaurus::new();
        assert_eq!(t.expand("Databases"), vec!["databases"]);
        let (db, idx) = setup();
        assert_eq!(expanded_hits(&db, &idx, &t, "databases").len(), 1);
    }

    #[test]
    fn synonyms_broaden_the_search() {
        let (db, idx) = setup();
        let mut t = Thesaurus::new();
        t.add_synonyms(&["databases", "DBMS"]);
        // Plain search finds one title; broadened finds both.
        assert_eq!(
            expanded_hits(&db, &idx, &Thesaurus::new(), "databases").len(),
            1
        );
        assert_eq!(expanded_hits(&db, &idx, &t, "databases").len(), 2);
        // Symmetric: searching the synonym also broadens.
        assert_eq!(expanded_hits(&db, &idx, &t, "dbms").len(), 2);
    }

    #[test]
    fn groups_merge_transitively() {
        let mut t = Thesaurus::new();
        t.add_synonyms(&["a", "b"]);
        t.add_synonyms(&["c", "d"]);
        t.add_synonyms(&["b", "c"]); // merges both groups
        let mut g = t.expand("a");
        g.sort();
        assert_eq!(g, vec!["a", "b", "c", "d"]);
        assert_eq!(t.term_count(), 4);
    }

    #[test]
    fn expansion_is_case_folded() {
        let mut t = Thesaurus::new();
        t.add_synonyms(&["Databases", "DBMS"]);
        assert!(t.expand("DATABASES").contains(&"dbms".to_string()));
    }

    #[test]
    fn expand_puts_the_query_term_first() {
        let mut t = Thesaurus::new();
        t.add_synonyms(&["x", "y", "z"]);
        assert_eq!(t.expand("y")[0], "y");
    }
}
