//! # ncq-fulltext — full-text search over Monet-transformed XML
//!
//! The meet operator of Schmidt, Kersten & Windhouwer (ICDE 2001) is
//! "applied to the result of a full-text search": the search produces
//! associations `(o, s)` spread over many string relations, grouped by
//! relation (= path type), and the meet combines them into nearest
//! concepts. This crate provides that front end:
//!
//! * [`tokenize`] — the word tokenizer (case-folded alphanumeric runs),
//! * [`InvertedIndex`] — token → postings `(PathId, Oid)` over every
//!   string relation of a [`ncq_store::MonetDb`],
//! * [`search`] — word / phrase / substring / predicate queries returning a
//!   [`HitSet`]: hits grouped per path, exactly the input shape the
//!   generalized meet algorithm (paper Fig. 5) consumes.
//!
//! ```
//! let doc = ncq_xml::parse(
//!     "<bib><article><author>Ben Bit</author><year>1999</year></article></bib>",
//! ).unwrap();
//! let db = ncq_store::MonetDb::from_document(&doc);
//! let idx = ncq_fulltext::InvertedIndex::build(&db);
//! let hits = ncq_fulltext::search::word_hits(&idx, "bit");
//! assert_eq!(hits.len(), 1);
//! ```

pub mod hits;
pub mod index;
pub mod intersect;
pub mod search;
pub mod snapshot;
pub mod thesaurus;
pub mod tokenize;

pub use hits::HitSet;
pub use index::{InvertedIndex, Posting};
pub use intersect::{intersect, intersect_all};
pub use thesaurus::{expanded_hits, Thesaurus};
