//! Hit sets: full-text results grouped by path type.
//!
//! The paper's generalized meet (Fig. 5) consumes "an arbitrary input set
//! of nodes grouped into relations `R₁ … Rₙ` according to the type of
//! association they represent". [`HitSet`] is that shape: for each path, a
//! sorted, deduplicated vector of owner oids.

use ncq_store::{MonetDb, Oid, PathId};
use std::collections::BTreeMap;

/// Full-text hits grouped per path (relation), each group sorted by oid.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HitSet {
    groups: BTreeMap<PathId, Vec<Oid>>,
}

impl HitSet {
    /// An empty hit set.
    pub fn new() -> HitSet {
        HitSet::default()
    }

    /// Build from an iterator of `(path, oid)` pairs; sorts and dedups.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (PathId, Oid)>) -> HitSet {
        let mut set = HitSet::new();
        for (p, o) in pairs {
            set.groups.entry(p).or_default().push(o);
        }
        set.normalize();
        set
    }

    fn normalize(&mut self) {
        for v in self.groups.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        self.groups.retain(|_, v| !v.is_empty());
    }

    /// Insert one hit.
    pub fn insert(&mut self, path: PathId, oid: Oid) {
        let v = self.groups.entry(path).or_default();
        match v.binary_search(&oid) {
            Ok(_) => {}
            Err(pos) => v.insert(pos, oid),
        }
    }

    /// Number of distinct hits.
    pub fn len(&self) -> usize {
        self.groups.values().map(Vec::len).sum()
    }

    /// Whether there are no hits.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Number of distinct relations hit.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// The grouped view consumed by the meet operators.
    pub fn groups(&self) -> &BTreeMap<PathId, Vec<Oid>> {
        &self.groups
    }

    /// Iterate over all `(path, oid)` hits.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, Oid)> + '_ {
        self.groups
            .iter()
            .flat_map(|(&p, v)| v.iter().map(move |&o| (p, o)))
    }

    /// Whether `(path, oid)` is a hit.
    pub fn contains(&self, path: PathId, oid: Oid) -> bool {
        self.groups
            .get(&path)
            .is_some_and(|v| v.binary_search(&oid).is_ok())
    }

    /// Union with another hit set.
    pub fn union(&mut self, other: &HitSet) {
        for (&p, v) in &other.groups {
            let dst = self.groups.entry(p).or_default();
            dst.extend_from_slice(v);
        }
        self.normalize();
    }

    /// Keep only hits whose owner satisfies `pred`.
    pub fn retain(&mut self, mut pred: impl FnMut(PathId, Oid) -> bool) {
        for (&p, v) in self.groups.iter_mut() {
            v.retain(|&o| pred(p, o));
        }
        self.groups.retain(|_, v| !v.is_empty());
    }

    /// Pretty listing `relation-name: o1 o2 …` for debugging and examples.
    pub fn display(&self, db: &MonetDb) -> String {
        let mut out = String::new();
        for (&p, v) in &self.groups {
            out.push_str(&db.relation_name(p));
            out.push(':');
            for o in v {
                out.push(' ');
                out.push_str(&o.to_string());
            }
            out.push('\n');
        }
        out
    }
}

impl FromIterator<(PathId, Oid)> for HitSet {
    fn from_iter<T: IntoIterator<Item = (PathId, Oid)>>(iter: T) -> HitSet {
        HitSet::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> PathId {
        PathId::from_index(i)
    }

    fn o(i: usize) -> Oid {
        Oid::from_index(i)
    }

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let h = HitSet::from_pairs(vec![(p(1), o(5)), (p(1), o(3)), (p(1), o(5)), (p(0), o(9))]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.group_count(), 2);
        assert_eq!(h.groups()[&p(1)], vec![o(3), o(5)]);
    }

    #[test]
    fn insert_keeps_sorted_unique() {
        let mut h = HitSet::new();
        h.insert(p(0), o(4));
        h.insert(p(0), o(2));
        h.insert(p(0), o(4));
        assert_eq!(h.groups()[&p(0)], vec![o(2), o(4)]);
    }

    #[test]
    fn contains_checks_membership() {
        let h = HitSet::from_pairs(vec![(p(2), o(7))]);
        assert!(h.contains(p(2), o(7)));
        assert!(!h.contains(p(2), o(8)));
        assert!(!h.contains(p(3), o(7)));
    }

    #[test]
    fn union_merges() {
        let mut a = HitSet::from_pairs(vec![(p(0), o(1)), (p(1), o(2))]);
        let b = HitSet::from_pairs(vec![(p(0), o(1)), (p(0), o(3))]);
        a.union(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.groups()[&p(0)], vec![o(1), o(3)]);
    }

    #[test]
    fn retain_filters_and_drops_empty_groups() {
        let mut h = HitSet::from_pairs(vec![(p(0), o(1)), (p(1), o(2)), (p(1), o(4))]);
        h.retain(|_, oid| oid.index() % 2 == 0);
        assert_eq!(h.len(), 2);
        assert!(!h.groups().contains_key(&p(0)));
    }

    #[test]
    fn iter_flattens_in_order() {
        let h = HitSet::from_pairs(vec![(p(1), o(9)), (p(0), o(3)), (p(1), o(4))]);
        let flat: Vec<_> = h.iter().collect();
        assert_eq!(flat, vec![(p(0), o(3)), (p(1), o(4)), (p(1), o(9))]);
    }

    #[test]
    fn empty_set_behaves() {
        let h = HitSet::new();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
        assert_eq!(h.iter().count(), 0);
    }
}
