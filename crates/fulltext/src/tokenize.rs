//! Word tokenizer: maximal alphanumeric runs, case-folded.
//!
//! `"Hacking & RSI (1999)"` tokenizes to `hacking`, `rsi`, `1999`. This is
//! deliberately simple — the paper's evaluation searches for author names,
//! conference acronyms and years, all of which are single tokens.

/// Iterator over the case-folded tokens of a string.
pub fn tokens(text: &str) -> impl Iterator<Item = String> + '_ {
    let mut chars = text.char_indices().peekable();
    std::iter::from_fn(move || {
        // Skip separators.
        while let Some(&(_, c)) = chars.peek() {
            if c.is_alphanumeric() {
                break;
            }
            chars.next();
        }
        let mut tok = String::new();
        while let Some(&(_, c)) = chars.peek() {
            if !c.is_alphanumeric() {
                break;
            }
            tok.extend(c.to_lowercase());
            chars.next();
        }
        if tok.is_empty() {
            None
        } else {
            Some(tok)
        }
    })
}

/// Case-fold a query term the same way index tokens are folded.
pub fn fold(term: &str) -> String {
    term.to_lowercase()
}

/// Whether `text` contains `needle` case-insensitively (the `contains`
/// predicate of the paper's query dialect).
pub fn contains_fold(text: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return true;
    }
    // Case-insensitive search without allocating for pure-ASCII input.
    if text.is_ascii() && needle.is_ascii() {
        let t = text.as_bytes();
        let n = needle.as_bytes();
        if n.len() > t.len() {
            return false;
        }
        t.windows(n.len()).any(|w| w.eq_ignore_ascii_case(n))
    } else {
        text.to_lowercase().contains(&needle.to_lowercase())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        tokens(s).collect()
    }

    #[test]
    fn splits_on_non_alphanumerics() {
        assert_eq!(toks("Hacking & RSI"), vec!["hacking", "rsi"]);
        assert_eq!(toks("a,b;c.d"), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn folds_case() {
        assert_eq!(toks("ICDE"), vec!["icde"]);
        assert_eq!(toks("Ben Bit"), vec!["ben", "bit"]);
    }

    #[test]
    fn numbers_are_tokens() {
        assert_eq!(toks("pp. 115-132, 1999"), vec!["pp", "115", "132", "1999"]);
    }

    #[test]
    fn empty_and_separator_only_strings_yield_nothing() {
        assert!(toks("").is_empty());
        assert!(toks("  ,;- ").is_empty());
    }

    #[test]
    fn unicode_words_tokenize() {
        assert_eq!(toks("García-Molina"), vec!["garcía", "molina"]);
        assert_eq!(toks("ÜBER maß"), vec!["über", "maß"]);
    }

    #[test]
    fn fold_matches_token_folding() {
        assert_eq!(fold("ICDE"), "icde");
        assert_eq!(fold("García"), "garcía");
    }

    #[test]
    fn contains_fold_is_case_insensitive() {
        assert!(contains_fold("How to Hack", "hack"));
        assert!(contains_fold("How to Hack", "HOW TO"));
        assert!(!contains_fold("How to Hack", "hacker"));
        assert!(contains_fold("anything", ""));
        assert!(contains_fold("Bücher über Bäume", "ÜBER"));
        assert!(!contains_fold("short", "much longer needle"));
    }
}
