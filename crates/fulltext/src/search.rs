//! Query entry points producing [`HitSet`]s.
//!
//! The paper's introductory query uses a `contains` predicate
//! (`t1 contains 'Bit'`); its evaluation section runs word searches
//! ("ICDE", a year). Both are provided, plus phrases and an arbitrary
//! string predicate for experiments.

use crate::hits::HitSet;
use crate::index::InvertedIndex;
use crate::tokenize::{contains_fold, fold, tokens};
use ncq_store::MonetDb;

/// All associations containing `term` as a whole word (case-folded).
pub fn word_hits(index: &InvertedIndex, term: &str) -> HitSet {
    HitSet::from_pairs(index.postings(term).iter().map(|p| (p.path, p.owner)))
}

/// Associations whose string contains every word of `phrase` *adjacently*
/// (verified against the stored string after an index-driven candidate
/// intersection).
pub fn phrase_hits(db: &MonetDb, index: &InvertedIndex, phrase: &str) -> HitSet {
    let words: Vec<String> = tokens(phrase).collect();
    match words.as_slice() {
        [] => HitSet::new(),
        [single] => word_hits(index, single),
        [_, ..] => {
            let folded = words.join(" ");
            // Candidate associations contain *every* word: a galloping
            // multi-way intersection over the sorted posting lists,
            // starting from the rarest word.
            let lists: Vec<&[crate::index::Posting]> =
                words.iter().map(|w| index.postings(w)).collect();
            let candidates = crate::intersect::intersect_all(&lists);
            HitSet::from_pairs(
                candidates
                    .into_iter()
                    .filter(|p| {
                        db.string_value(p.path, p.owner).is_some_and(|s| {
                            let norm: Vec<String> = tokens(s).collect();
                            norm.join(" ").contains(&folded)
                        })
                    })
                    .map(|p| (p.path, p.owner)),
            )
        }
    }
}

/// All associations whose string contains `needle` as a substring
/// (case-insensitive). This scans every string relation — the paper's
/// `contains` predicate; selective word search should be preferred.
pub fn substring_hits(db: &MonetDb, needle: &str) -> HitSet {
    predicate_hits(db, |s| contains_fold(s, needle))
}

/// All associations whose string satisfies `pred` (full scan).
pub fn predicate_hits(db: &MonetDb, mut pred: impl FnMut(&str) -> bool) -> HitSet {
    let mut hits = HitSet::new();
    for path in db.string_paths() {
        for (owner, text) in db.strings_of(path) {
            if pred(text) {
                hits.insert(path, *owner);
            }
        }
    }
    hits
}

/// Hits for a term the way a search box would resolve it: single words go
/// through the index; multi-word terms become phrase queries; when the
/// index finds nothing (e.g. a sub-word like `Hackin`), fall back to a
/// substring scan.
pub fn term_hits(db: &MonetDb, index: &InvertedIndex, term: &str) -> HitSet {
    let words: Vec<String> = tokens(term).collect();
    let primary = match words.as_slice() {
        [] => HitSet::new(),
        [single] if *single == fold(term.trim()) => word_hits(index, single),
        [_] => substring_hits(db, term),
        _ => phrase_hits(db, index, term),
    };
    if primary.is_empty() && !term.trim().is_empty() {
        substring_hits(db, term)
    } else {
        primary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_xml::parse;

    fn setup() -> (MonetDb, InvertedIndex) {
        let db = MonetDb::from_document(
            &parse(
                r#"<bib>
                     <article key="BB99">
                       <author>Ben Bit</author>
                       <title>How to Hack</title>
                       <year>1999</year>
                     </article>
                     <article key="BK99">
                       <author>Bob Byte</author>
                       <title>Hacking &amp; RSI</title>
                       <year>1999</year>
                     </article>
                   </bib>"#,
            )
            .unwrap(),
        );
        let idx = InvertedIndex::build(&db);
        (db, idx)
    }

    #[test]
    fn word_hits_group_by_relation() {
        let (db, idx) = setup();
        let hits = word_hits(&idx, "1999");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits.group_count(), 1);
        let (&path, group) = hits.groups().iter().next().unwrap();
        assert_eq!(db.relation_name(path), "bib/article/year/cdata");
        assert_eq!(group.len(), 2);
    }

    #[test]
    fn phrase_hits_require_adjacency() {
        let (db, idx) = setup();
        assert_eq!(phrase_hits(&db, &idx, "Ben Bit").len(), 1);
        assert_eq!(phrase_hits(&db, &idx, "Bob Byte").len(), 1);
        // Both words exist, but never adjacently in one string.
        assert_eq!(phrase_hits(&db, &idx, "Ben Byte").len(), 0);
        // Single-word phrase degenerates to word search.
        assert_eq!(phrase_hits(&db, &idx, "Hack").len(), 1);
        // Empty phrase finds nothing.
        assert!(phrase_hits(&db, &idx, " ,").is_empty());
    }

    #[test]
    fn substring_hits_find_subwords() {
        let (db, _) = setup();
        // "Hack" occurs in "How to Hack" and "Hacking & RSI".
        assert_eq!(substring_hits(&db, "Hack").len(), 2);
        // Word search only finds the exact token.
        let (_, idx) = setup();
        assert_eq!(word_hits(&idx, "Hack").len(), 1);
    }

    #[test]
    fn substring_hits_cover_attributes() {
        let (db, _) = setup();
        let hits = substring_hits(&db, "BK99");
        assert_eq!(hits.len(), 1);
        let (path, owner) = hits.iter().next().unwrap();
        assert_eq!(db.relation_name(path), "bib/article/@key");
        assert_eq!(db.tag(owner), Some("article"));
    }

    #[test]
    fn predicate_hits_run_arbitrary_predicates() {
        let (db, _) = setup();
        let hits = predicate_hits(&db, |s| s.len() > 10);
        // "How to Hack" (11) and "Hacking & RSI" (13).
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn term_hits_dispatch() {
        let (db, idx) = setup();
        // Single word → index.
        assert_eq!(term_hits(&db, &idx, "Bit").len(), 1);
        // Multi word → phrase.
        assert_eq!(term_hits(&db, &idx, "Ben Bit").len(), 1);
        // Sub-word → scan.
        assert_eq!(term_hits(&db, &idx, "Hackin").len(), 1);
    }

    #[test]
    fn no_hits_for_absent_terms() {
        let (db, idx) = setup();
        assert!(word_hits(&idx, "absent").is_empty());
        assert!(substring_hits(&db, "absent").is_empty());
        assert!(term_hits(&db, &idx, "absent").is_empty());
    }
}
