//! The inverted index over all string relations of a database.

use crate::tokenize::tokens;
use ncq_store::{Col, MonetDb, Oid, PathId};
use std::collections::HashMap;

/// One posting: the association `(owner, string)` that contained the token,
/// identified by its relation (path) and owner oid.
///
/// `repr(C)`: both fields are `repr(transparent)` `u32` newtypes, so a
/// posting is guaranteed to be laid out as `[path, owner]: [u32; 2]` —
/// the shape the SIMD decode kernel deinterleaves owner columns from
/// (see [`mod@crate::intersect`]) and the shape the v3 snapshot maps
/// back as a plain slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(C)]
pub struct Posting {
    /// Relation (path type) of the association.
    pub path: PathId,
    /// Owner oid: the cdata node for text, the element for attributes.
    pub owner: Oid,
}

// SAFETY: `repr(C)` over two `repr(transparent)` u32 newtypes — size 8,
// align 4, no padding, every bit pattern valid. The compile-time asserts
// below pin the layout the mapped snapshot relies on.
unsafe impl ncq_store::Pod for Posting {}
const _: () = assert!(std::mem::size_of::<Posting>() == 8);
const _: () = assert!(std::mem::align_of::<Posting>() == 4);

/// The two physical representations behind [`InvertedIndex`].
#[derive(Debug, Clone)]
pub(crate) enum Repr {
    /// Hash map of owned posting lists: the build / legacy-decode /
    /// restriction representation.
    Built {
        map: HashMap<Box<str>, Vec<Posting>>,
        postings: usize,
    },
    /// Zero-copy views into a v3 snapshot: the vocabulary as a sorted
    /// blob + offsets (CSR over bytes), the postings as one
    /// concatenated slice + offsets (CSR over lists). Lookups binary
    /// search the sorted vocabulary instead of hashing.
    Mapped {
        /// Byte offsets into `blob`, length `tokens + 1`.
        token_off: Col<u32>,
        /// Concatenated UTF-8 token bytes, lexicographic order.
        blob: Col<u8>,
        /// Posting offsets, length `tokens + 1`.
        posting_off: Col<u32>,
        /// All postings, concatenated in token order.
        postings: Col<Posting>,
    },
}

/// Token → postings over every string relation of a [`MonetDb`].
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    /// `pub(crate)` so the snapshot codec (`crate::snapshot`) can
    /// persist and reconstruct the posting lists directly.
    pub(crate) repr: Repr,
}

impl Default for InvertedIndex {
    fn default() -> InvertedIndex {
        InvertedIndex {
            repr: Repr::Built {
                map: HashMap::new(),
                postings: 0,
            },
        }
    }
}

impl InvertedIndex {
    /// Index every string association of `db`.
    pub fn build(db: &MonetDb) -> InvertedIndex {
        let mut map: HashMap<Box<str>, Vec<Posting>> = HashMap::new();
        let mut postings = 0usize;
        for path in db.string_paths() {
            for (owner, text) in db.strings_of(path) {
                let posting = Posting {
                    path,
                    owner: *owner,
                };
                for tok in tokens(text) {
                    let list = map.entry(tok.into_boxed_str()).or_default();
                    // The same token may occur twice in one string; store
                    // the posting once. Postings arrive in (path, owner)
                    // order, so checking the tail suffices.
                    if list.last() != Some(&posting) {
                        list.push(posting);
                        postings += 1;
                    }
                }
            }
        }
        // Contract: every posting list is sorted by (path, owner) —
        // document order within a relation — and deduplicated. It holds
        // by construction (string_paths iterates paths in interning
        // order, owners in document order); the galloping intersections
        // and the meet plane sweeps rely on it.
        debug_assert!(map.values().all(|v| v.windows(2).all(|w| w[0] < w[1])));
        InvertedIndex {
            repr: Repr::Built { map, postings },
        }
    }

    /// Restriction of the index to the postings whose owner satisfies
    /// `keep` — the per-shard posting build of a sharded execution
    /// layer. Each global posting list is filtered in order, so the
    /// sorted/deduplicated contract carries over; restricting an index
    /// by a partition of the OID space yields indexes whose posting
    /// lists partition the originals (no duplication, nothing lost).
    /// The result is always the built representation — shards own their
    /// filtered lists regardless of where the parent index lives.
    pub fn restrict(&self, mut keep: impl FnMut(Oid) -> bool) -> InvertedIndex {
        let mut map: HashMap<Box<str>, Vec<Posting>> = HashMap::new();
        let mut postings = 0usize;
        for (token, list) in self.entries() {
            let kept: Vec<Posting> = list.iter().filter(|p| keep(p.owner)).copied().collect();
            if !kept.is_empty() {
                postings += kept.len();
                map.insert(token.into(), kept);
            }
        }
        InvertedIndex {
            repr: Repr::Built { map, postings },
        }
    }

    /// The `i`-th token of the mapped vocabulary.
    fn mapped_token<'a>(token_off: &Col<u32>, blob: &'a Col<u8>, i: usize) -> &'a str {
        let bytes = &blob[token_off[i] as usize..token_off[i + 1] as usize];
        // The v3 decoder validated every token slice as UTF-8.
        std::str::from_utf8(bytes).expect("token validated at decode")
    }

    /// Postings of a token, sorted by `(path, owner)` and deduplicated.
    /// The query term is case-folded before lookup.
    pub fn postings(&self, term: &str) -> &[Posting] {
        let folded = crate::tokenize::fold(term);
        match &self.repr {
            Repr::Built { map, .. } => map.get(folded.as_str()).map_or(&[], Vec::as_slice),
            Repr::Mapped {
                token_off,
                blob,
                posting_off,
                postings,
            } => {
                let count = token_off.len() - 1;
                let mut lo = 0usize;
                let mut hi = count;
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if Self::mapped_token(token_off, blob, mid) < folded.as_str() {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                if lo < count && Self::mapped_token(token_off, blob, lo) == folded.as_str() {
                    &postings[posting_off[lo] as usize..posting_off[lo + 1] as usize]
                } else {
                    &[]
                }
            }
        }
    }

    /// Whether the token occurs anywhere.
    pub fn contains(&self, term: &str) -> bool {
        !self.postings(term).is_empty()
    }

    /// Number of distinct tokens.
    pub fn vocabulary_size(&self) -> usize {
        match &self.repr {
            Repr::Built { map, .. } => map.len(),
            Repr::Mapped { token_off, .. } => token_off.len() - 1,
        }
    }

    /// Total number of postings.
    pub fn posting_count(&self) -> usize {
        match &self.repr {
            Repr::Built { postings, .. } => *postings,
            Repr::Mapped { postings, .. } => postings.len(),
        }
    }

    /// Iterate over the vocabulary (unordered for the built
    /// representation, lexicographic for the mapped one).
    pub fn vocabulary(&self) -> Box<dyn Iterator<Item = &str> + '_> {
        match &self.repr {
            Repr::Built { map, .. } => Box::new(map.keys().map(|k| k.as_ref())),
            Repr::Mapped {
                token_off, blob, ..
            } => Box::new(
                (0..token_off.len() - 1).map(move |i| Self::mapped_token(token_off, blob, i)),
            ),
        }
    }

    /// `(token, postings)` pairs in unspecified order — the raw walk
    /// the restriction and the codecs build on.
    pub(crate) fn entries(&self) -> Box<dyn Iterator<Item = (&str, &[Posting])> + '_> {
        match &self.repr {
            Repr::Built { map, .. } => {
                Box::new(map.iter().map(|(k, v)| (k.as_ref(), v.as_slice())))
            }
            Repr::Mapped {
                token_off,
                blob,
                posting_off,
                postings,
            } => Box::new((0..token_off.len() - 1).map(move |i| {
                (
                    Self::mapped_token(token_off, blob, i),
                    &postings[posting_off[i] as usize..posting_off[i + 1] as usize],
                )
            })),
        }
    }

    /// `(token, postings)` pairs in lexicographic token order — the
    /// deterministic sequence both snapshot encoders write.
    pub(crate) fn sorted_entries(&self) -> Vec<(&str, &[Posting])> {
        let mut entries: Vec<(&str, &[Posting])> = self.entries().collect();
        // Already sorted when mapped; sort_unstable on sorted input is
        // cheap enough not to special-case.
        entries.sort_unstable_by_key(|&(t, _)| t);
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_xml::parse;

    fn db() -> MonetDb {
        MonetDb::from_document(
            &parse(
                r#"<bib>
                     <article key="BB99">
                       <author>Ben Bit</author>
                       <title>How to Hack</title>
                       <year>1999</year>
                     </article>
                     <article key="BK99">
                       <author>Bob Byte</author>
                       <title>Hacking &amp; RSI</title>
                       <year>1999</year>
                     </article>
                   </bib>"#,
            )
            .unwrap(),
        )
    }

    #[test]
    fn word_lookup_finds_cdata_hits() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let hits = idx.postings("Bit");
        assert_eq!(hits.len(), 1);
        assert_eq!(db.relation_name(hits[0].path), "bib/article/author/cdata");
        // The owner is the cdata node carrying "Ben Bit".
        assert_eq!(
            db.string_value(hits[0].path, hits[0].owner),
            Some("Ben Bit")
        );
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let idx = InvertedIndex::build(&db());
        assert_eq!(idx.postings("hack").len(), 1);
        assert_eq!(idx.postings("HACK"), idx.postings("hack"));
        assert!(idx.contains("HACKING"));
    }

    #[test]
    fn attribute_values_are_indexed_with_element_owner() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let hits = idx.postings("BB99");
        assert_eq!(hits.len(), 1);
        assert_eq!(db.relation_name(hits[0].path), "bib/article/@key");
        assert_eq!(db.tag(hits[0].owner), Some("article"));
    }

    #[test]
    fn shared_token_has_multiple_postings() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let hits = idx.postings("1999");
        assert_eq!(hits.len(), 2);
        assert_ne!(hits[0].owner, hits[1].owner);
    }

    #[test]
    fn duplicate_token_in_one_string_posts_once() {
        let db = MonetDb::from_document(&parse("<a><t>spam spam spam</t></a>").unwrap());
        let idx = InvertedIndex::build(&db);
        assert_eq!(idx.postings("spam").len(), 1);
    }

    #[test]
    fn missing_token_yields_empty() {
        let idx = InvertedIndex::build(&db());
        assert!(idx.postings("absent").is_empty());
        assert!(!idx.contains("absent"));
    }

    #[test]
    fn restriction_partitions_the_postings() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        // Split the OID space at an arbitrary pivot: the two restricted
        // indexes partition every posting list.
        let pivot = Oid::from_index(db.node_count() / 2);
        let low = idx.restrict(|o| o < pivot);
        let high = idx.restrict(|o| o >= pivot);
        assert_eq!(
            low.posting_count() + high.posting_count(),
            idx.posting_count()
        );
        for token in idx.vocabulary() {
            let mut merged: Vec<Posting> = low
                .postings(token)
                .iter()
                .chain(high.postings(token))
                .copied()
                .collect();
            merged.sort_unstable();
            assert_eq!(merged, idx.postings(token), "{token}");
            assert!(low.postings(token).windows(2).all(|w| w[0] < w[1]));
        }
        // Tokens with no surviving postings vanish entirely.
        assert!(idx.restrict(|_| false).vocabulary_size() == 0);
    }

    #[test]
    fn counters_are_consistent() {
        let idx = InvertedIndex::build(&db());
        assert_eq!(idx.vocabulary().count(), idx.vocabulary_size());
        let total: usize = idx.vocabulary().map(|t| idx.postings(t).len()).sum();
        assert_eq!(total, idx.posting_count());
    }
}
