//! The inverted index over all string relations of a database.

use crate::tokenize::tokens;
use ncq_store::{MonetDb, Oid, PathId};
use std::collections::HashMap;

/// One posting: the association `(owner, string)` that contained the token,
/// identified by its relation (path) and owner oid.
///
/// `repr(C)`: both fields are `repr(transparent)` `u32` newtypes, so a
/// posting is guaranteed to be laid out as `[path, owner]: [u32; 2]` —
/// the shape the SIMD decode kernel deinterleaves owner columns from
/// (see [`mod@crate::intersect`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(C)]
pub struct Posting {
    /// Relation (path type) of the association.
    pub path: PathId,
    /// Owner oid: the cdata node for text, the element for attributes.
    pub owner: Oid,
}

/// Token → postings over every string relation of a [`MonetDb`].
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    /// `pub(crate)` so the snapshot codec (`crate::snapshot`) can
    /// persist and reconstruct the posting lists directly.
    pub(crate) map: HashMap<Box<str>, Vec<Posting>>,
    pub(crate) postings: usize,
}

impl InvertedIndex {
    /// Index every string association of `db`.
    pub fn build(db: &MonetDb) -> InvertedIndex {
        let mut map: HashMap<Box<str>, Vec<Posting>> = HashMap::new();
        let mut postings = 0usize;
        for path in db.string_paths() {
            for (owner, text) in db.strings_of(path) {
                let posting = Posting {
                    path,
                    owner: *owner,
                };
                for tok in tokens(text) {
                    let list = map.entry(tok.into_boxed_str()).or_default();
                    // The same token may occur twice in one string; store
                    // the posting once. Postings arrive in (path, owner)
                    // order, so checking the tail suffices.
                    if list.last() != Some(&posting) {
                        list.push(posting);
                        postings += 1;
                    }
                }
            }
        }
        // Contract: every posting list is sorted by (path, owner) —
        // document order within a relation — and deduplicated. It holds
        // by construction (string_paths iterates paths in interning
        // order, owners in document order); the galloping intersections
        // and the meet plane sweeps rely on it.
        debug_assert!(map.values().all(|v| v.windows(2).all(|w| w[0] < w[1])));
        InvertedIndex { map, postings }
    }

    /// Restriction of the index to the postings whose owner satisfies
    /// `keep` — the per-shard posting build of a sharded execution
    /// layer. Each global posting list is filtered in order, so the
    /// sorted/deduplicated contract carries over; restricting an index
    /// by a partition of the OID space yields indexes whose posting
    /// lists partition the originals (no duplication, nothing lost).
    pub fn restrict(&self, mut keep: impl FnMut(Oid) -> bool) -> InvertedIndex {
        let mut map: HashMap<Box<str>, Vec<Posting>> = HashMap::new();
        let mut postings = 0usize;
        for (token, list) in &self.map {
            let kept: Vec<Posting> = list.iter().filter(|p| keep(p.owner)).copied().collect();
            if !kept.is_empty() {
                postings += kept.len();
                map.insert(token.clone(), kept);
            }
        }
        InvertedIndex { map, postings }
    }

    /// Postings of a token, sorted by `(path, owner)` and deduplicated.
    /// The query term is case-folded before lookup.
    pub fn postings(&self, term: &str) -> &[Posting] {
        let folded = crate::tokenize::fold(term);
        self.map.get(folded.as_str()).map_or(&[], Vec::as_slice)
    }

    /// Whether the token occurs anywhere.
    pub fn contains(&self, term: &str) -> bool {
        !self.postings(term).is_empty()
    }

    /// Number of distinct tokens.
    pub fn vocabulary_size(&self) -> usize {
        self.map.len()
    }

    /// Total number of postings.
    pub fn posting_count(&self) -> usize {
        self.postings
    }

    /// Iterate over the vocabulary (unordered).
    pub fn vocabulary(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(|k| k.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_xml::parse;

    fn db() -> MonetDb {
        MonetDb::from_document(
            &parse(
                r#"<bib>
                     <article key="BB99">
                       <author>Ben Bit</author>
                       <title>How to Hack</title>
                       <year>1999</year>
                     </article>
                     <article key="BK99">
                       <author>Bob Byte</author>
                       <title>Hacking &amp; RSI</title>
                       <year>1999</year>
                     </article>
                   </bib>"#,
            )
            .unwrap(),
        )
    }

    #[test]
    fn word_lookup_finds_cdata_hits() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let hits = idx.postings("Bit");
        assert_eq!(hits.len(), 1);
        assert_eq!(db.relation_name(hits[0].path), "bib/article/author/cdata");
        // The owner is the cdata node carrying "Ben Bit".
        assert_eq!(
            db.string_value(hits[0].path, hits[0].owner),
            Some("Ben Bit")
        );
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let idx = InvertedIndex::build(&db());
        assert_eq!(idx.postings("hack").len(), 1);
        assert_eq!(idx.postings("HACK"), idx.postings("hack"));
        assert!(idx.contains("HACKING"));
    }

    #[test]
    fn attribute_values_are_indexed_with_element_owner() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let hits = idx.postings("BB99");
        assert_eq!(hits.len(), 1);
        assert_eq!(db.relation_name(hits[0].path), "bib/article/@key");
        assert_eq!(db.tag(hits[0].owner), Some("article"));
    }

    #[test]
    fn shared_token_has_multiple_postings() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let hits = idx.postings("1999");
        assert_eq!(hits.len(), 2);
        assert_ne!(hits[0].owner, hits[1].owner);
    }

    #[test]
    fn duplicate_token_in_one_string_posts_once() {
        let db = MonetDb::from_document(&parse("<a><t>spam spam spam</t></a>").unwrap());
        let idx = InvertedIndex::build(&db);
        assert_eq!(idx.postings("spam").len(), 1);
    }

    #[test]
    fn missing_token_yields_empty() {
        let idx = InvertedIndex::build(&db());
        assert!(idx.postings("absent").is_empty());
        assert!(!idx.contains("absent"));
    }

    #[test]
    fn restriction_partitions_the_postings() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        // Split the OID space at an arbitrary pivot: the two restricted
        // indexes partition every posting list.
        let pivot = Oid::from_index(db.node_count() / 2);
        let low = idx.restrict(|o| o < pivot);
        let high = idx.restrict(|o| o >= pivot);
        assert_eq!(
            low.posting_count() + high.posting_count(),
            idx.posting_count()
        );
        for token in idx.vocabulary() {
            let mut merged: Vec<Posting> = low
                .postings(token)
                .iter()
                .chain(high.postings(token))
                .copied()
                .collect();
            merged.sort_unstable();
            assert_eq!(merged, idx.postings(token), "{token}");
            assert!(low.postings(token).windows(2).all(|w| w[0] < w[1]));
        }
        // Tokens with no surviving postings vanish entirely.
        assert!(idx.restrict(|_| false).vocabulary_size() == 0);
    }

    #[test]
    fn counters_are_consistent() {
        let idx = InvertedIndex::build(&db());
        assert_eq!(idx.vocabulary().count(), idx.vocabulary_size());
        let total: usize = idx.vocabulary().map(|t| idx.postings(t).len()).sum();
        assert_eq!(total, idx.posting_count());
    }
}
