//! Snapshot codec for the inverted index.
//!
//! The index is the most expensive build artifact after the meet index:
//! every string association is tokenized and case-folded at build time.
//! Persisting the finished posting lists means a cold start re-hashes
//! the (small) vocabulary but never re-tokenizes the (large) corpus.
//!
//! Legacy (v1/v2) layout of the `FULLTEXT` section (all little-endian,
//! inside the checksummed container of [`ncq_store::snapshot`]):
//!
//! ```text
//! token count (u32)
//! per token, in lexicographic byte order:
//!   token (u32 len + UTF-8 bytes)
//!   posting count (u32)
//!   postings: (path u32, owner u32) pairs, in (path, owner) order
//! ```
//!
//! The v3 layout stores the same data in **final form** — four flat
//! arrays a mapped open can serve without rebuilding the hash map:
//!
//! ```text
//! token count (u64) · total postings (u64) · blob length (u64)
//! token_off:   u32[tokens + 1]   byte offsets into blob
//! blob:        u8[blob length]   concatenated UTF-8 tokens, sorted
//! posting_off: u32[tokens + 1]   posting-list offsets
//! postings:    Posting[total]    (path u32, owner u32) pairs
//! ```
//!
//! Tokens are written **sorted** in both layouts — the in-memory
//! `HashMap` iterates in a nondeterministic order, and snapshot bytes
//! must be a pure function of the database (the CI determinism gate
//! `cmp`s two saves). For v3 the sort also *is* the lookup structure:
//! the mapped representation binary searches the sorted vocabulary.

use crate::index::{InvertedIndex, Posting, Repr};
use ncq_store::snapshot::{section, SnapshotError, SnapshotReader, SnapshotWriter};
use ncq_store::{MappedSnapshot, MonetDb, Oid, PathId, SnapshotWriterV3};
use std::collections::HashMap;

impl InvertedIndex {
    /// Write the legacy `FULLTEXT` section.
    pub fn encode_snapshot(&self, writer: &mut SnapshotWriter) {
        let entries = self.sorted_entries();
        let mut s = writer.section(section::FULLTEXT);
        s.put_u32(entries.len() as u32);
        for (token, postings) in entries {
            s.put_str(token);
            s.put_u32(postings.len() as u32);
            for p in postings {
                s.put_u32(p.path.index() as u32);
                s.put_u32(p.owner.index() as u32);
            }
        }
    }

    /// Write the v3 `FULLTEXT` section: the vocabulary as a sorted CSR
    /// blob and the postings as one concatenated `Pod` array, so a
    /// mapped open serves both without copying.
    pub fn encode_snapshot_v3(&self, writer: &mut SnapshotWriterV3) {
        let entries = self.sorted_entries();
        let mut token_off: Vec<u32> = Vec::with_capacity(entries.len() + 1);
        let mut blob: Vec<u8> = Vec::new();
        let mut posting_off: Vec<u32> = Vec::with_capacity(entries.len() + 1);
        let mut postings: Vec<Posting> = Vec::with_capacity(self.posting_count());
        token_off.push(0);
        posting_off.push(0);
        for (token, list) in entries {
            blob.extend_from_slice(token.as_bytes());
            token_off.push(blob.len() as u32);
            postings.extend_from_slice(list);
            posting_off.push(postings.len() as u32);
        }
        let mut s = writer.section(section::FULLTEXT);
        s.put_u64((token_off.len() - 1) as u64);
        s.put_u64(postings.len() as u64);
        s.put_u64(blob.len() as u64);
        s.put_col::<u32>(&token_off);
        s.put_col::<u8>(&blob);
        s.put_col::<u32>(&posting_off);
        s.put_col::<Posting>(&postings);
    }

    /// Read the legacy `FULLTEXT` section back, validating the posting
    /// contract (sorted by `(path, owner)`, deduplicated, in range for
    /// `store`) that the galloping intersections and plane sweeps rely
    /// on.
    pub fn decode_snapshot(
        reader: &SnapshotReader,
        store: &MonetDb,
    ) -> Result<InvertedIndex, SnapshotError> {
        let mut s = reader.section(section::FULLTEXT)?;
        let token_count = s.get_u32("token count")? as usize;
        let paths = store.summary().len();
        let n = store.node_count();
        // Capacities are clamped to what the payload can hold (a token
        // entry is ≥ 9 bytes, a posting 8): inconsistent counts must
        // fail typed when the bytes run out, not abort the allocator.
        let mut map: HashMap<Box<str>, Vec<Posting>> =
            HashMap::with_capacity(token_count.min(s.remaining() / 9));
        let mut total = 0usize;
        for _ in 0..token_count {
            let token = s.get_str("token")?;
            let len = s.get_u32("posting count")? as usize;
            let mut postings = Vec::with_capacity(len.min(s.remaining() / 8));
            let mut last: Option<Posting> = None;
            for _ in 0..len {
                let path = s.get_u32("posting path")? as usize;
                let owner = s.get_u32("posting owner")? as usize;
                if path >= paths || owner >= n {
                    return Err(SnapshotError::Corrupt {
                        context: "posting out of range",
                    });
                }
                let posting = Posting {
                    path: PathId::from_index(path),
                    owner: Oid::from_index(owner),
                };
                if last.is_some_and(|prev| prev >= posting) {
                    return Err(SnapshotError::Corrupt {
                        context: "posting list not sorted/deduplicated",
                    });
                }
                last = Some(posting);
                postings.push(posting);
            }
            if postings.is_empty() {
                return Err(SnapshotError::Corrupt {
                    context: "empty posting list",
                });
            }
            total += postings.len();
            if map.insert(token.into(), postings).is_some() {
                return Err(SnapshotError::Corrupt {
                    context: "duplicate token",
                });
            }
        }
        Ok(InvertedIndex {
            repr: Repr::Built {
                map,
                postings: total,
            },
        })
    }

    /// Read the v3 `FULLTEXT` section as zero-copy views.
    ///
    /// The vocabulary and posting structure are fully validated here
    /// (monotone offsets, UTF-8 + strictly sorted tokens, sorted and
    /// deduplicated in-range posting lists) because the mapped lookup
    /// path assumes all of it — so the section is read through
    /// [`MappedSnapshot::section_verified`], paying its checksum once
    /// alongside the structural scan.
    pub fn decode_snapshot_v3(
        snap: &MappedSnapshot,
        store: &MonetDb,
    ) -> Result<InvertedIndex, SnapshotError> {
        let mut s = snap.section_verified(section::FULLTEXT)?;
        let token_count = s.get_u64()? as usize;
        let posting_total = s.get_u64()? as usize;
        let blob_len = s.get_u64()? as usize;
        let token_off = s.take_col::<u32>(token_count + 1)?;
        let blob = s.take_col::<u8>(blob_len)?;
        let posting_off = s.take_col::<u32>(token_count + 1)?;
        let postings = s.take_col::<Posting>(posting_total)?;
        let corrupt = |context: &'static str| SnapshotError::Corrupt { context };
        if !s.at_end() {
            return Err(corrupt("fulltext section has trailing bytes"));
        }
        if token_off.first() != Some(&0)
            || token_off.last() != Some(&(blob_len as u32))
            || token_off.windows(2).any(|w| w[0] > w[1])
        {
            return Err(corrupt("fulltext token offsets not monotone"));
        }
        // posting_off strictly increasing: empty posting lists are
        // rejected, same as the legacy decoder.
        if posting_off.first() != Some(&0)
            || posting_off.last() != Some(&(posting_total as u32))
            || posting_off.windows(2).any(|w| w[0] >= w[1])
        {
            return Err(corrupt("fulltext posting offsets not increasing"));
        }
        let mut prev_token: Option<&str> = None;
        for i in 0..token_count {
            let bytes = &blob[token_off[i] as usize..token_off[i + 1] as usize];
            let token = std::str::from_utf8(bytes)
                .map_err(|_| corrupt("fulltext token not valid UTF-8"))?;
            if prev_token.is_some_and(|prev| prev >= token) {
                return Err(corrupt("fulltext vocabulary not strictly sorted"));
            }
            prev_token = Some(token);
        }
        let paths = store.summary().len();
        let n = store.node_count();
        for i in 0..token_count {
            let list = &postings[posting_off[i] as usize..posting_off[i + 1] as usize];
            if list
                .iter()
                .any(|p| p.path.index() >= paths || p.owner.index() >= n)
            {
                return Err(corrupt("fulltext posting out of range"));
            }
            if list.windows(2).any(|w| w[0] >= w[1]) {
                return Err(corrupt("fulltext posting list not sorted/deduplicated"));
            }
        }
        Ok(InvertedIndex {
            repr: Repr::Mapped {
                token_off,
                blob,
                posting_off,
                postings,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_store::VerifyMode;
    use ncq_xml::parse;

    fn store() -> MonetDb {
        MonetDb::from_document(
            &parse(
                r#"<bib>
                     <article key="BB99"><author>Ben Bit</author>
                       <title>How to Hack</title><year>1999</year></article>
                     <article key="BK99"><author>Bob Byte</author>
                       <title>Hacking &amp; RSI</title><year>1999</year></article>
                   </bib>"#,
            )
            .unwrap(),
        )
    }

    fn round_trip(store: &MonetDb, idx: &InvertedIndex) -> InvertedIndex {
        let mut w = SnapshotWriter::new();
        idx.encode_snapshot(&mut w);
        InvertedIndex::decode_snapshot(&SnapshotReader::from_bytes(w.to_bytes()).unwrap(), store)
            .unwrap()
    }

    fn round_trip_v3(store: &MonetDb, idx: &InvertedIndex) -> InvertedIndex {
        let mut w = SnapshotWriterV3::new();
        store.encode_snapshot_v3(&mut w);
        idx.encode_snapshot_v3(&mut w);
        let snap = MappedSnapshot::from_owned_bytes(w.to_bytes(), VerifyMode::Eager).unwrap();
        InvertedIndex::decode_snapshot_v3(&snap, store).unwrap()
    }

    #[test]
    fn round_trip_preserves_every_posting_list() {
        let store = store();
        let idx = InvertedIndex::build(&store);
        let loaded = round_trip(&store, &idx);
        assert_eq!(loaded.vocabulary_size(), idx.vocabulary_size());
        assert_eq!(loaded.posting_count(), idx.posting_count());
        for token in idx.vocabulary() {
            assert_eq!(loaded.postings(token), idx.postings(token), "{token}");
        }
    }

    #[test]
    fn v3_round_trip_serves_identical_postings_through_the_mapped_repr() {
        let store = store();
        let idx = InvertedIndex::build(&store);
        let loaded = round_trip_v3(&store, &idx);
        assert_eq!(loaded.vocabulary_size(), idx.vocabulary_size());
        assert_eq!(loaded.posting_count(), idx.posting_count());
        for token in idx.vocabulary() {
            assert_eq!(loaded.postings(token), idx.postings(token), "{token}");
        }
        assert!(!loaded.contains("no-such-token"));
        // Mapped vocabulary comes back lexicographically sorted.
        let vocab: Vec<&str> = loaded.vocabulary().collect();
        let mut sorted = vocab.clone();
        sorted.sort_unstable();
        assert_eq!(vocab, sorted);
        // And a restriction of the mapped index behaves like one of the
        // built index (shards always rebuild owned lists).
        let cut = |o: Oid| o.index().is_multiple_of(2);
        let a = loaded.restrict(cut);
        let b = idx.restrict(cut);
        assert_eq!(a.posting_count(), b.posting_count());
        for token in b.vocabulary() {
            assert_eq!(a.postings(token), b.postings(token), "{token}");
        }
    }

    #[test]
    fn encoding_is_deterministic_despite_the_hash_map() {
        let store = store();
        let idx = InvertedIndex::build(&store);
        let bytes = |i: &InvertedIndex| {
            let mut w = SnapshotWriter::new();
            i.encode_snapshot(&mut w);
            w.to_bytes()
        };
        // Same index twice, and a rebuilt index (fresh hash seeds).
        assert_eq!(bytes(&idx), bytes(&idx));
        assert_eq!(bytes(&idx), bytes(&InvertedIndex::build(&store)));
        assert_eq!(bytes(&idx), bytes(&round_trip(&store, &idx)));
    }

    #[test]
    fn v3_encoding_is_deterministic_and_repr_independent() {
        let store = store();
        let idx = InvertedIndex::build(&store);
        let bytes = |i: &InvertedIndex| {
            let mut w = SnapshotWriterV3::new();
            store.encode_snapshot_v3(&mut w);
            i.encode_snapshot_v3(&mut w);
            w.to_bytes()
        };
        assert_eq!(bytes(&idx), bytes(&idx));
        assert_eq!(bytes(&idx), bytes(&InvertedIndex::build(&store)));
        // Re-encoding a mapped index reproduces the same bytes.
        assert_eq!(bytes(&idx), bytes(&round_trip_v3(&store, &idx)));
        // And the two container generations agree on content: the v1
        // encoding of a mapped index matches the original's.
        let v1_bytes = |i: &InvertedIndex| {
            let mut w = SnapshotWriter::new();
            i.encode_snapshot(&mut w);
            w.to_bytes()
        };
        assert_eq!(v1_bytes(&idx), v1_bytes(&round_trip_v3(&store, &idx)));
    }

    #[test]
    fn out_of_range_postings_are_rejected() {
        let store = store();
        let mut w = SnapshotWriter::new();
        {
            let mut s = w.section(section::FULLTEXT);
            s.put_u32(1);
            s.put_str("ghost");
            s.put_u32(1);
            s.put_u32(0);
            s.put_u32(u32::MAX); // owner far out of range
        }
        let r = SnapshotReader::from_bytes(w.to_bytes()).unwrap();
        assert!(matches!(
            InvertedIndex::decode_snapshot(&r, &store),
            Err(SnapshotError::Corrupt { .. })
        ));
    }

    #[test]
    fn v3_decode_rejects_malformed_sections() {
        let store = store();
        // Helper: write a FULLTEXT section from raw parts.
        let encode = |token_off: &[u32], blob: &[u8], posting_off: &[u32], posts: &[Posting]| {
            let mut w = SnapshotWriterV3::new();
            store.encode_snapshot_v3(&mut w);
            let mut s = w.section(section::FULLTEXT);
            s.put_u64((token_off.len() - 1) as u64);
            s.put_u64(posts.len() as u64);
            s.put_u64(blob.len() as u64);
            s.put_col::<u32>(token_off);
            s.put_col::<u8>(blob);
            s.put_col::<u32>(posting_off);
            s.put_col::<Posting>(posts);
            MappedSnapshot::from_owned_bytes(w.to_bytes(), VerifyMode::Eager).unwrap()
        };
        let p = |path: usize, owner: usize| Posting {
            path: PathId::from_index(path),
            owner: Oid::from_index(owner),
        };
        // Out-of-range owner.
        let snap = encode(&[0, 1], b"a", &[0, 1], &[p(0, 100_000)]);
        assert!(matches!(
            InvertedIndex::decode_snapshot_v3(&snap, &store),
            Err(SnapshotError::Corrupt { .. })
        ));
        // Vocabulary out of order.
        let snap = encode(&[0, 1, 2], b"ba", &[0, 1, 2], &[p(0, 1), p(0, 1)]);
        assert!(matches!(
            InvertedIndex::decode_snapshot_v3(&snap, &store),
            Err(SnapshotError::Corrupt { .. })
        ));
        // Empty posting list (posting_off not strictly increasing).
        let snap = encode(&[0, 1, 2], b"ab", &[0, 0, 1], &[p(0, 1)]);
        assert!(matches!(
            InvertedIndex::decode_snapshot_v3(&snap, &store),
            Err(SnapshotError::Corrupt { .. })
        ));
        // Unsorted posting list.
        let snap = encode(&[0, 1], b"a", &[0, 2], &[p(1, 2), p(0, 1)]);
        assert!(matches!(
            InvertedIndex::decode_snapshot_v3(&snap, &store),
            Err(SnapshotError::Corrupt { .. })
        ));
        // Invalid UTF-8 token.
        let snap = encode(&[0, 1], &[0xFF], &[0, 1], &[p(0, 1)]);
        assert!(matches!(
            InvertedIndex::decode_snapshot_v3(&snap, &store),
            Err(SnapshotError::Corrupt { .. })
        ));
    }
}
