//! Snapshot codec for the inverted index.
//!
//! The index is the most expensive build artifact after the meet index:
//! every string association is tokenized and case-folded at build time.
//! Persisting the finished posting lists means a cold start re-hashes
//! the (small) vocabulary but never re-tokenizes the (large) corpus.
//!
//! Layout of the `FULLTEXT` section (all little-endian, inside the
//! checksummed container of [`ncq_store::snapshot`]):
//!
//! ```text
//! token count (u32)
//! per token, in lexicographic byte order:
//!   token (u32 len + UTF-8 bytes)
//!   posting count (u32)
//!   postings: (path u32, owner u32) pairs, in (path, owner) order
//! ```
//!
//! Tokens are written **sorted** — the in-memory `HashMap` iterates in
//! a nondeterministic order, and snapshot bytes must be a pure function
//! of the database (the CI determinism gate `cmp`s two saves).

use crate::index::{InvertedIndex, Posting};
use ncq_store::snapshot::{section, SnapshotError, SnapshotReader, SnapshotWriter};
use ncq_store::{MonetDb, Oid, PathId};
use std::collections::HashMap;

impl InvertedIndex {
    /// Write the `FULLTEXT` section.
    pub fn encode_snapshot(&self, writer: &mut SnapshotWriter) {
        let mut tokens: Vec<&str> = self.map.keys().map(|k| k.as_ref()).collect();
        tokens.sort_unstable();
        let mut s = writer.section(section::FULLTEXT);
        s.put_u32(tokens.len() as u32);
        for token in tokens {
            let postings = &self.map[token];
            s.put_str(token);
            s.put_u32(postings.len() as u32);
            for p in postings {
                s.put_u32(p.path.index() as u32);
                s.put_u32(p.owner.index() as u32);
            }
        }
    }

    /// Read the `FULLTEXT` section back, validating the posting
    /// contract (sorted by `(path, owner)`, deduplicated, in range for
    /// `store`) that the galloping intersections and plane sweeps rely
    /// on.
    pub fn decode_snapshot(
        reader: &SnapshotReader,
        store: &MonetDb,
    ) -> Result<InvertedIndex, SnapshotError> {
        let mut s = reader.section(section::FULLTEXT)?;
        let token_count = s.get_u32("token count")? as usize;
        let paths = store.summary().len();
        let n = store.node_count();
        // Capacities are clamped to what the payload can hold (a token
        // entry is ≥ 9 bytes, a posting 8): inconsistent counts must
        // fail typed when the bytes run out, not abort the allocator.
        let mut map: HashMap<Box<str>, Vec<Posting>> =
            HashMap::with_capacity(token_count.min(s.remaining() / 9));
        let mut total = 0usize;
        for _ in 0..token_count {
            let token = s.get_str("token")?;
            let len = s.get_u32("posting count")? as usize;
            let mut postings = Vec::with_capacity(len.min(s.remaining() / 8));
            let mut last: Option<Posting> = None;
            for _ in 0..len {
                let path = s.get_u32("posting path")? as usize;
                let owner = s.get_u32("posting owner")? as usize;
                if path >= paths || owner >= n {
                    return Err(SnapshotError::Corrupt {
                        context: "posting out of range",
                    });
                }
                let posting = Posting {
                    path: PathId::from_index(path),
                    owner: Oid::from_index(owner),
                };
                if last.is_some_and(|prev| prev >= posting) {
                    return Err(SnapshotError::Corrupt {
                        context: "posting list not sorted/deduplicated",
                    });
                }
                last = Some(posting);
                postings.push(posting);
            }
            if postings.is_empty() {
                return Err(SnapshotError::Corrupt {
                    context: "empty posting list",
                });
            }
            total += postings.len();
            if map.insert(token.into(), postings).is_some() {
                return Err(SnapshotError::Corrupt {
                    context: "duplicate token",
                });
            }
        }
        Ok(InvertedIndex {
            map,
            postings: total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncq_xml::parse;

    fn store() -> MonetDb {
        MonetDb::from_document(
            &parse(
                r#"<bib>
                     <article key="BB99"><author>Ben Bit</author>
                       <title>How to Hack</title><year>1999</year></article>
                     <article key="BK99"><author>Bob Byte</author>
                       <title>Hacking &amp; RSI</title><year>1999</year></article>
                   </bib>"#,
            )
            .unwrap(),
        )
    }

    fn round_trip(store: &MonetDb, idx: &InvertedIndex) -> InvertedIndex {
        let mut w = SnapshotWriter::new();
        idx.encode_snapshot(&mut w);
        InvertedIndex::decode_snapshot(&SnapshotReader::from_bytes(w.to_bytes()).unwrap(), store)
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_every_posting_list() {
        let store = store();
        let idx = InvertedIndex::build(&store);
        let loaded = round_trip(&store, &idx);
        assert_eq!(loaded.vocabulary_size(), idx.vocabulary_size());
        assert_eq!(loaded.posting_count(), idx.posting_count());
        for token in idx.vocabulary() {
            assert_eq!(loaded.postings(token), idx.postings(token), "{token}");
        }
    }

    #[test]
    fn encoding_is_deterministic_despite_the_hash_map() {
        let store = store();
        let idx = InvertedIndex::build(&store);
        let bytes = |i: &InvertedIndex| {
            let mut w = SnapshotWriter::new();
            i.encode_snapshot(&mut w);
            w.to_bytes()
        };
        // Same index twice, and a rebuilt index (fresh hash seeds).
        assert_eq!(bytes(&idx), bytes(&idx));
        assert_eq!(bytes(&idx), bytes(&InvertedIndex::build(&store)));
        assert_eq!(bytes(&idx), bytes(&round_trip(&store, &idx)));
    }

    #[test]
    fn out_of_range_postings_are_rejected() {
        let store = store();
        let mut w = SnapshotWriter::new();
        {
            let mut s = w.section(section::FULLTEXT);
            s.put_u32(1);
            s.put_str("ghost");
            s.put_u32(1);
            s.put_u32(0);
            s.put_u32(u32::MAX); // owner far out of range
        }
        let r = SnapshotReader::from_bytes(w.to_bytes()).unwrap();
        assert!(matches!(
            InvertedIndex::decode_snapshot(&r, &store),
            Err(SnapshotError::Corrupt { .. })
        ));
    }
}
