//! # ncq-simd — branch-free lane-parallel kernels for the meet engine
//!
//! The hot loops of the nearest-concept stack — posting-list
//! intersection (`ncq-fulltext`), the tagged run merges of the batch
//! executor (`ncq-core::batch`), frontier set algebra
//! (`ncq-core::meet_sets`), and the interval probes of the sharded
//! gather (`ncq-shard`) — all reduce to four primitive kernels over
//! sorted integer runs:
//!
//! * [`lower_bound_u32`] / [`lower_bound_u64`] — partition search;
//! * [`intersect_u32_into`] — compare-exchange intersection;
//! * [`difference_u32_into`] — sorted-set subtraction;
//! * [`merge_u64_into`] / [`merge_tagged_u64`] — stable run merges;
//! * [`range_u32`] / [`range_u64`] — the interval-containment probe
//!   (`lo <= x < hi` over a sorted run is a pair of partition
//!   searches);
//! * [`unpack_hi_u32`] — posting decode: deinterleave the owner
//!   column out of `(path, owner)` pairs.
//!
//! This crate provides each kernel twice: a scalar reference
//! ([`scalar`]) and an SSE2/AVX2 implementation ([`x86`], x86-64
//! only). The public functions dispatch per process according to
//! [`mode`], which combines **runtime CPU-feature detection**
//! (`is_x86_feature_detected!`) with the **`NCQ_SIMD` environment
//! override**:
//!
//! | `NCQ_SIMD`            | effect                                     |
//! |-----------------------|--------------------------------------------|
//! | unset / `on` / `auto` | best detected ISA (AVX2, else SSE2)        |
//! | `off` / `scalar` / `0`| scalar kernels everywhere                  |
//! | `sse2`                | cap at SSE2 even when AVX2 is available    |
//! | `avx2`                | AVX2 (falls back to best detected if absent) |
//!
//! The contract is **bit-identical output**: for every input, every
//! dispatch target returns exactly the bytes of the scalar reference.
//! `tests/properties.rs` proves it per kernel (random runs × lane
//! remainders × misaligned heads × degenerate shapes), and the
//! repo-level differential harness (`tests/batch_equivalence.rs`)
//! plus the golden suites re-prove it end to end under both
//! `NCQ_SIMD` settings in the `simd-compat` CI job.
//!
//! Every call is tallied in a per-kernel **dispatch counter**
//! ([`dispatch_stats`]) split scalar/vector — the server's `STATS` and
//! `METRICS` verbs expose them, and CI diffs the two matrix legs to
//! prove both paths actually executed (a silently-scalar "SIMD" build
//! would pass every equivalence test).

pub mod scalar;
pub mod x86;

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering::Relaxed};
use std::sync::OnceLock;

/// The kernel implementation a call dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mode {
    /// Scalar reference kernels (any host, `NCQ_SIMD=off`).
    Scalar,
    /// 128-bit kernels (x86-64 baseline); 64-bit-lane and
    /// gather-assist kernels that need AVX2 fall back to scalar.
    Sse2,
    /// 256-bit kernels (runtime-detected).
    Avx2,
}

impl Mode {
    /// Lower-case name, as printed by `STATS` and the probe example.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Scalar => "scalar",
            Mode::Sse2 => "sse2",
            Mode::Avx2 => "avx2",
        }
    }
}

/// Best ISA the host supports (ignoring the env override).
fn best_available() -> Mode {
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx2") {
            Mode::Avx2
        } else {
            Mode::Sse2
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Mode::Scalar
    }
}

/// Startup decision: `NCQ_SIMD` env capped by what the CPU supports.
fn detect() -> Mode {
    let best = best_available();
    match std::env::var("NCQ_SIMD") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "off" | "scalar" | "0" | "false" => Mode::Scalar,
            "sse2" => best.min(Mode::Sse2),
            // `avx2` (or anything else, incl. `on`): best available —
            // an override can cap capability, never invent it.
            _ => best,
        },
        Err(_) => best,
    }
}

/// Process-wide override slot for tests and benches: `0` = none,
/// otherwise `Mode as u8 + 1`.
static MODE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// The dispatch mode in effect: the test/bench override if set, else
/// the cached startup decision (env + CPU detection).
pub fn mode() -> Mode {
    match MODE_OVERRIDE.load(Relaxed) {
        1 => Mode::Scalar,
        2 => Mode::Sse2,
        3 => Mode::Avx2,
        _ => {
            static DETECTED: OnceLock<Mode> = OnceLock::new();
            *DETECTED.get_or_init(detect)
        }
    }
}

/// Force a dispatch mode for the current process (benches compare
/// vector vs scalar in one run; the property suite exercises every
/// target regardless of host env). `None` restores env/CPU dispatch.
/// Returns the mode actually in effect — requesting an ISA the CPU
/// lacks caps at the best available, so the caller can skip a leg
/// instead of crashing on an illegal instruction.
pub fn set_mode_override(mode: Option<Mode>) -> Mode {
    let capped = mode.map(|m| m.min(best_available()));
    MODE_OVERRIDE.store(
        match capped {
            None => 0,
            Some(Mode::Scalar) => 1,
            Some(Mode::Sse2) => 2,
            Some(Mode::Avx2) => 3,
        },
        Relaxed,
    );
    capped.unwrap_or_else(self::mode)
}

// ---------------------------------------------------------------------
// Dispatch counters
// ---------------------------------------------------------------------

macro_rules! counters {
    ($($field:ident: $scalar:ident / $vector:ident),+ $(,)?) => {
        $(static $scalar: AtomicU64 = AtomicU64::new(0);
          static $vector: AtomicU64 = AtomicU64::new(0);)+

        /// Per-kernel dispatch tallies, split scalar/vector. "Vector"
        /// means a lane-parallel kernel actually ran — a call that
        /// *wanted* vector but fell back (e.g. a 64-bit kernel under
        /// SSE2) counts as scalar, so the counters never overstate
        /// coverage.
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
        pub struct DispatchStats {
            $(pub $field: (u64, u64),)+
        }

        /// Snapshot of the per-kernel dispatch counters as
        /// `(scalar, vector)` pairs.
        pub fn dispatch_stats() -> DispatchStats {
            DispatchStats {
                $($field: ($scalar.load(Relaxed), $vector.load(Relaxed)),)+
            }
        }

        /// Zero all dispatch counters (the probe example and the CI
        /// matrix measure deltas over a known workload).
        pub fn reset_dispatch_stats() {
            $($scalar.store(0, Relaxed);
              $vector.store(0, Relaxed);)+
        }
    };
}

counters! {
    lower_bound: LB_S / LB_V,
    range: RANGE_S / RANGE_V,
    intersect: IX_S / IX_V,
    difference: DIFF_S / DIFF_V,
    merge: MERGE_S / MERGE_V,
    decode: DEC_S / DEC_V,
}

impl DispatchStats {
    /// Total scalar-kernel dispatches.
    pub fn total_scalar(&self) -> u64 {
        self.lines().iter().map(|&(_, s, _)| s).sum()
    }

    /// Total vector-kernel dispatches.
    pub fn total_vector(&self) -> u64 {
        self.lines().iter().map(|&(_, _, v)| v).sum()
    }

    /// `name=(scalar,vector)` pairs for wire surfaces and the probe.
    pub fn lines(&self) -> Vec<(&'static str, u64, u64)> {
        let DispatchStats {
            lower_bound,
            range,
            intersect,
            difference,
            merge,
            decode,
        } = *self;
        vec![
            ("lower_bound", lower_bound.0, lower_bound.1),
            ("range", range.0, range.1),
            ("intersect", intersect.0, intersect.1),
            ("difference", difference.0, difference.1),
            ("merge", merge.0, merge.1),
            ("decode", decode.0, decode.1),
        ]
    }
}

// ---------------------------------------------------------------------
// Public kernels
// ---------------------------------------------------------------------

/// Smallest `i` with `hay[i] >= target` (`hay` sorted ascending);
/// `hay.len()` if every element is below `target`.
#[inline]
pub fn lower_bound_u32(hay: &[u32], target: u32) -> usize {
    match mode() {
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 => {
            LB_V.fetch_add(1, Relaxed);
            unsafe { x86::lower_bound_u32_avx2(hay, target) }
        }
        #[cfg(target_arch = "x86_64")]
        Mode::Sse2 => {
            LB_V.fetch_add(1, Relaxed);
            unsafe { x86::lower_bound_u32_sse2(hay, target) }
        }
        _ => {
            LB_S.fetch_add(1, Relaxed);
            scalar::lower_bound_u32(hay, target)
        }
    }
}

/// Smallest `i` with `hay[i] >= target` (`hay` sorted ascending);
/// `hay.len()` if every element is below `target`.
#[inline]
pub fn lower_bound_u64(hay: &[u64], target: u64) -> usize {
    match mode() {
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 => {
            LB_V.fetch_add(1, Relaxed);
            unsafe { x86::lower_bound_u64_avx2(hay, target) }
        }
        _ => {
            LB_S.fetch_add(1, Relaxed);
            scalar::lower_bound_u64(hay, target)
        }
    }
}

/// The half-open index range of elements `x` with `lo <= x < hi` in a
/// sorted run — the bulk interval-containment probe behind subtree
/// (ancestor) tests: preorder intervals are contiguous, so "which of
/// these document-ordered survivors lie under this node" is exactly
/// two partition searches.
#[inline]
pub fn range_u32(hay: &[u32], lo: u32, hi: u32) -> (usize, usize) {
    match mode() {
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 => {
            RANGE_V.fetch_add(1, Relaxed);
            let start = unsafe { x86::lower_bound_u32_avx2(hay, lo) };
            let end = start + unsafe { x86::lower_bound_u32_avx2(&hay[start..], hi) };
            (start, end)
        }
        #[cfg(target_arch = "x86_64")]
        Mode::Sse2 => {
            RANGE_V.fetch_add(1, Relaxed);
            let start = unsafe { x86::lower_bound_u32_sse2(hay, lo) };
            let end = start + unsafe { x86::lower_bound_u32_sse2(&hay[start..], hi) };
            (start, end)
        }
        _ => {
            RANGE_S.fetch_add(1, Relaxed);
            let start = scalar::lower_bound_u32(hay, lo);
            let end = start + scalar::lower_bound_u32(&hay[start..], hi);
            (start, end)
        }
    }
}

/// As [`range_u32`], for 64-bit lanes.
#[inline]
pub fn range_u64(hay: &[u64], lo: u64, hi: u64) -> (usize, usize) {
    match mode() {
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 => {
            RANGE_V.fetch_add(1, Relaxed);
            let start = unsafe { x86::lower_bound_u64_avx2(hay, lo) };
            let end = start + unsafe { x86::lower_bound_u64_avx2(&hay[start..], hi) };
            (start, end)
        }
        _ => {
            RANGE_S.fetch_add(1, Relaxed);
            let start = scalar::lower_bound_u64(hay, lo);
            let end = start + scalar::lower_bound_u64(&hay[start..], hi);
            (start, end)
        }
    }
}

/// Intersection of two sorted, strictly increasing runs, appended to
/// `out` in ascending order.
#[inline]
pub fn intersect_u32_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    match mode() {
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 | Mode::Sse2 => {
            IX_V.fetch_add(1, Relaxed);
            unsafe { x86::intersect_u32_sse2(a, b, out) }
        }
        _ => {
            IX_S.fetch_add(1, Relaxed);
            scalar::intersect_u32_into(a, b, out);
        }
    }
}

/// `set \ remove` over sorted, strictly increasing runs, appended to
/// `out` in ascending order.
#[inline]
pub fn difference_u32_into(set: &[u32], remove: &[u32], out: &mut Vec<u32>) {
    match mode() {
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 => {
            DIFF_V.fetch_add(1, Relaxed);
            unsafe { x86::difference_u32_avx2(set, remove, out) }
        }
        _ => {
            DIFF_S.fetch_add(1, Relaxed);
            scalar::difference_u32_into(set, remove, out);
        }
    }
}

/// Stable two-way merge of sorted `u64` runs (ties keep the left run's
/// elements first), appended to `out`.
#[inline]
pub fn merge_u64_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    match mode() {
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 => {
            MERGE_V.fetch_add(1, Relaxed);
            unsafe { x86::merge_u64_avx2(a, b, out) }
        }
        _ => {
            MERGE_S.fetch_add(1, Relaxed);
            scalar::merge_u64_into(a, b, out);
        }
    }
}

/// Posting decode: append the high lane of each `[lo, hi]` pair to
/// `out`. A `(path, owner)` posting with guaranteed field order is a
/// `[u32; 2]`; deinterleaving its owner column produces the strictly
/// increasing run the set kernels consume, and doing it 4–8 pairs per
/// round is what makes handing a posting segment to the intersection
/// kernel cheaper than walking the structs.
#[inline]
pub fn unpack_hi_u32(pairs: &[[u32; 2]], out: &mut Vec<u32>) {
    match mode() {
        #[cfg(target_arch = "x86_64")]
        Mode::Avx2 => {
            DEC_V.fetch_add(1, Relaxed);
            unsafe { x86::unpack_hi_u32_avx2(pairs, out) }
        }
        #[cfg(target_arch = "x86_64")]
        Mode::Sse2 => {
            DEC_V.fetch_add(1, Relaxed);
            unsafe { x86::unpack_hi_u32_sse2(pairs, out) }
        }
        _ => {
            DEC_S.fetch_add(1, Relaxed);
            scalar::unpack_hi_u32(pairs, out);
        }
    }
}

/// K-way merge of sorted `u64` runs into `out` (cleared first) by a
/// balanced tree of stable pairwise merges — the vectorized shape of
/// the batch executor's `merge_tagged`. With values packed as
/// `key << 32 | tag`, the result order is exactly `sort_unstable` by
/// `(key, tag)` over the concatenation: adjacent-pair tree merging
/// with left-first ties is a stable merge sort.
pub fn merge_tagged_u64(runs: &[&[u64]], out: &mut Vec<u64>) {
    out.clear();
    match runs {
        [] => {}
        [only] => out.extend_from_slice(only),
        [a, b] => merge_u64_into(a, b, out),
        _ => {
            let mut level: Vec<Vec<u64>> = runs
                .chunks(2)
                .map(|pair| match pair {
                    [a, b] => {
                        let mut merged = Vec::with_capacity(a.len() + b.len());
                        merge_u64_into(a, b, &mut merged);
                        merged
                    }
                    [only] => only.to_vec(),
                    _ => unreachable!("chunks(2)"),
                })
                .collect();
            while level.len() > 2 {
                level = level
                    .chunks(2)
                    .map(|pair| match pair {
                        [a, b] => {
                            let mut merged = Vec::with_capacity(a.len() + b.len());
                            merge_u64_into(a, b, &mut merged);
                            merged
                        }
                        [only] => only.clone(),
                        _ => unreachable!("chunks(2)"),
                    })
                    .collect();
            }
            match level.as_slice() {
                [a, b] => merge_u64_into(a, b, out),
                [only] => out.extend_from_slice(only),
                _ => unreachable!("reduced"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_override_round_trips() {
        let natural = mode();
        assert_eq!(set_mode_override(Some(Mode::Scalar)), Mode::Scalar);
        assert_eq!(mode(), Mode::Scalar);
        set_mode_override(None);
        assert_eq!(mode(), natural);
    }

    #[test]
    fn override_caps_at_the_host_isa() {
        let got = set_mode_override(Some(Mode::Avx2));
        assert!(got <= Mode::Avx2);
        assert_eq!(mode(), got);
        set_mode_override(None);
    }

    #[test]
    fn dispatch_counters_tally_calls() {
        // Not reset-based: other tests in this binary run concurrently
        // and the counters are process-global, so assert deltas only.
        let before = dispatch_stats();
        let hay: Vec<u32> = (0..100).map(|i| i * 3).collect();
        lower_bound_u32(&hay, 50);
        let mut out = Vec::new();
        intersect_u32_into(&hay, &hay, &mut out);
        let after = dispatch_stats();
        let sum = |s: &DispatchStats| s.total_scalar() + s.total_vector();
        assert!(sum(&after) >= sum(&before) + 2);
        assert_eq!(out, hay);
    }

    #[test]
    fn merge_tagged_handles_all_run_counts() {
        let runs: Vec<Vec<u64>> = vec![vec![1, 5, 9], vec![2, 5, 7], vec![0, 11], vec![5], vec![]];
        for k in 0..=runs.len() {
            let refs: Vec<&[u64]> = runs[..k].iter().map(Vec::as_slice).collect();
            let mut got = Vec::new();
            merge_tagged_u64(&refs, &mut got);
            let mut expect: Vec<u64> = runs[..k].iter().flatten().copied().collect();
            expect.sort_unstable();
            assert_eq!(got, expect, "k={k}");
        }
    }
}
