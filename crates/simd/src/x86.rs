//! SSE2/AVX2 kernels for x86-64.
//!
//! Every function here is a drop-in for its [`crate::scalar`] namesake:
//! same signature, bit-identical output (the property suite in
//! `tests/properties.rs` proves it over random runs, lane remainders
//! and misaligned slice heads). The code follows the branch-free
//! playbook:
//!
//! * **lower bound** — binary search narrows to a small window, then a
//!   vector *count* of elements below the target finishes the probe
//!   (`cmpgt` + `movemask` + `count_ones`); on a sorted window the
//!   count *is* the partition point, so there is no lane extraction.
//! * **intersect** — the compare-exchange block algorithm: load one
//!   register from each side, compare all lane pairs via rotations,
//!   emit the matching left lanes in order, advance whichever block
//!   has the smaller maximum. Strictly increasing inputs guarantee a
//!   match is emitted exactly once. Skewed stretches short-circuit
//!   through the vector lower bound before the block compare.
//! * **merge / difference** — merge loops whose bulk copies are found
//!   by the vector lower bound; the copies themselves are `memcpy`.
//!
//! Unsigned lane compares use the sign-flip trick (`x ^ MIN` turns an
//! unsigned order into a signed one); all loads are unaligned
//! (`loadu`), so callers never need alignment guarantees.
//!
//! Safety: every `unsafe` block is either an intrinsic whose required
//! CPU feature is guaranteed by the `#[target_feature]` attribute of
//! the surrounding function (callers go through
//! [`crate::Mode`]-checked dispatch), or an unaligned load whose
//! pointer stays inside a live slice — the bounds are established by
//! the surrounding loop conditions. The nightly ASan CI job runs this
//! module's whole suite under `-Zsanitizer=address`.

#![cfg(target_arch = "x86_64")]

use core::arch::x86_64::*;

/// Window below which the u32 lower bound switches from binary search
/// to a vector count. One cache line of u32s times two: small enough
/// that the count is a handful of compares, large enough that the
/// binary search tail (the unpredictable branches) is skipped.
const LB32_WINDOW: usize = 32;

/// As [`LB32_WINDOW`], for 64-bit lanes.
const LB64_WINDOW: usize = 16;

/// SSE2 `lower_bound_u32`: binary search to a window, vector count of
/// elements below the target inside it.
///
/// # Safety
/// Requires SSE2 (guaranteed on every x86-64 CPU; kept `unsafe` +
/// `target_feature` for uniformity with the AVX2 kernels).
#[target_feature(enable = "sse2")]
pub unsafe fn lower_bound_u32_sse2(hay: &[u32], target: u32) -> usize {
    let (base, window) = narrow_window(hay, LB32_WINDOW, |x| x < target);
    let sign = _mm_set1_epi32(i32::MIN);
    let tv = _mm_xor_si128(_mm_set1_epi32(target as i32), sign);
    let mut below = 0usize;
    let mut i = 0usize;
    while i + 4 <= window.len() {
        let x = _mm_loadu_si128(window.as_ptr().add(i).cast());
        let lt = _mm_cmpgt_epi32(tv, _mm_xor_si128(x, sign));
        below += (_mm_movemask_ps(_mm_castsi128_ps(lt)) as u32).count_ones() as usize;
        i += 4;
    }
    while i < window.len() && window[i] < target {
        below += 1;
        i += 1;
    }
    base + below
}

/// AVX2 `lower_bound_u32`: as the SSE2 kernel with 8-wide counts.
///
/// # Safety
/// Requires AVX2 (checked by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn lower_bound_u32_avx2(hay: &[u32], target: u32) -> usize {
    let (base, window) = narrow_window(hay, LB32_WINDOW, |x| x < target);
    let sign = _mm256_set1_epi32(i32::MIN);
    let tv = _mm256_xor_si256(_mm256_set1_epi32(target as i32), sign);
    let mut below = 0usize;
    let mut i = 0usize;
    while i + 8 <= window.len() {
        let x = _mm256_loadu_si256(window.as_ptr().add(i).cast());
        let lt = _mm256_cmpgt_epi32(tv, _mm256_xor_si256(x, sign));
        below += (_mm256_movemask_ps(_mm256_castsi256_ps(lt)) as u32).count_ones() as usize;
        i += 8;
    }
    while i < window.len() && window[i] < target {
        below += 1;
        i += 1;
    }
    base + below
}

/// AVX2 `lower_bound_u64`: binary search to a window, 4-wide signed
/// compare after a sign flip.
///
/// # Safety
/// Requires AVX2 (checked by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn lower_bound_u64_avx2(hay: &[u64], target: u64) -> usize {
    let (base, window) = narrow_window(hay, LB64_WINDOW, |x| x < target);
    let sign = _mm256_set1_epi64x(i64::MIN);
    let tv = _mm256_xor_si256(_mm256_set1_epi64x(target as i64), sign);
    let mut below = 0usize;
    let mut i = 0usize;
    while i + 4 <= window.len() {
        let x = _mm256_loadu_si256(window.as_ptr().add(i).cast());
        let lt = _mm256_cmpgt_epi64(tv, _mm256_xor_si256(x, sign));
        below += (_mm256_movemask_pd(_mm256_castsi256_pd(lt)) as u32).count_ones() as usize;
        i += 4;
    }
    while i < window.len() && window[i] < target {
        below += 1;
        i += 1;
    }
    base + below
}

/// Binary-search `hay` down to at most `cap` elements around the
/// partition point; returns the window's offset and the window.
///
/// The probe reads with `get_unchecked` (sound: `mid < hi <= len` at
/// every step) — a bounds check per level would cost the few percent
/// that `partition_point` doesn't pay.
#[inline(always)]
fn narrow_window<T: Copy>(hay: &[T], cap: usize, below: impl Fn(T) -> bool) -> (usize, &[T]) {
    let mut lo = 0usize;
    let mut hi = hay.len();
    while hi - lo > cap {
        let mid = lo + (hi - lo) / 2;
        if below(unsafe { *hay.get_unchecked(mid) }) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    (lo, &hay[lo..hi])
}

/// Exponential probe + vector partition count: the vector analogue of
/// the scalar kernel's gallop. The doubling probe keeps the search
/// local to the current position (a full binary search would cache-miss
/// across the whole remaining run on skewed inputs); the vector count
/// finishes the final window branch-free.
#[target_feature(enable = "sse2")]
unsafe fn gallop_sse2(list: &[u32], target: u32) -> usize {
    let mut hi = 1usize;
    while hi < list.len() && list[hi - 1] < target {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = hi.min(list.len());
    lo + lower_bound_u32_sse2(&list[lo..hi], target)
}

/// SSE2 compare-exchange intersection of strictly increasing runs.
///
/// # Safety
/// Requires SSE2 (see [`lower_bound_u32_sse2`]).
#[target_feature(enable = "sse2")]
pub unsafe fn intersect_u32_sse2(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i + 4 <= a.len() && j + 4 <= b.len() {
        // A block entirely below the other side's head: the gallop
        // case. Jump it with the local galloping probe instead of
        // grinding through compare-exchange rounds.
        if a[i + 3] < b[j] {
            i += gallop_sse2(&a[i + 4..], b[j]) + 4;
            continue;
        }
        if b[j + 3] < a[i] {
            j += gallop_sse2(&b[j + 4..], a[i]) + 4;
            continue;
        }
        let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
        let vb = _mm_loadu_si128(b.as_ptr().add(j).cast());
        // Compare every (a-lane, b-lane) pair: vb and its three
        // rotations cover all four alignments.
        let m = _mm_or_si128(
            _mm_or_si128(
                _mm_cmpeq_epi32(va, vb),
                _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b00_11_10_01)),
            ),
            _mm_or_si128(
                _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b01_00_11_10)),
                _mm_cmpeq_epi32(va, _mm_shuffle_epi32(vb, 0b10_01_00_11)),
            ),
        );
        let mut mask = _mm_movemask_ps(_mm_castsi128_ps(m)) as u32;
        // Matching a-lanes, in lane (= document) order.
        while mask != 0 {
            let lane = mask.trailing_zeros() as usize;
            out.push(a[i + lane]);
            mask &= mask - 1;
        }
        // Advance the block(s) with the smaller maximum; on equal
        // maxima both advance (that element just matched).
        let amax = a[i + 3];
        let bmax = b[j + 3];
        if amax <= bmax {
            i += 4;
        }
        if bmax <= amax {
            j += 4;
        }
    }
    // Sub-block tails finish on the scalar kernel.
    crate::scalar::intersect_u32_into(&a[i..], &b[j..], out);
}

/// SSE2 posting decode: gather the high lane of four `[lo, hi]` pairs
/// per round (two loads, two shuffles, one unpack), scalar remainder.
///
/// # Safety
/// Requires SSE2 (see [`lower_bound_u32_sse2`]).
#[target_feature(enable = "sse2")]
pub unsafe fn unpack_hi_u32_sse2(pairs: &[[u32; 2]], out: &mut Vec<u32>) {
    let n = pairs.len();
    out.reserve(n);
    let base = out.len();
    let mut i = 0usize;
    while i + 4 <= n {
        let p = pairs.as_ptr().add(i).cast::<__m128i>();
        let v0 = _mm_loadu_si128(p); // [lo0, hi0, lo1, hi1]
        let v1 = _mm_loadu_si128(p.add(1));
        let s0 = _mm_shuffle_epi32(v0, 0b11_01_11_01); // [hi0, hi1, hi0, hi1]
        let s1 = _mm_shuffle_epi32(v1, 0b11_01_11_01);
        // Low halves back to back: [hi0, hi1, hi2, hi3].
        let packed = _mm_unpacklo_epi64(s0, s1);
        _mm_storeu_si128(out.as_mut_ptr().add(base + i).cast(), packed);
        i += 4;
    }
    // The reserve above covers everything written through the raw
    // pointer; the remainder goes through push.
    out.set_len(base + i);
    for pair in &pairs[i..] {
        out.push(pair[1]);
    }
}

/// AVX2 posting decode: eight pairs per round via two cross-lane
/// permutes, scalar remainder.
///
/// # Safety
/// Requires AVX2 (checked by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn unpack_hi_u32_avx2(pairs: &[[u32; 2]], out: &mut Vec<u32>) {
    let n = pairs.len();
    out.reserve(n);
    let base = out.len();
    // Odd 32-bit lanes (the hi halves) into the low 128 bits.
    let idx = _mm256_setr_epi32(1, 3, 5, 7, 1, 3, 5, 7);
    let mut i = 0usize;
    while i + 8 <= n {
        let p = pairs.as_ptr().add(i).cast::<__m256i>();
        let v0 = _mm256_loadu_si256(p); // pairs i .. i+4
        let v1 = _mm256_loadu_si256(p.add(1)); // pairs i+4 .. i+8
        let r0 = _mm256_permutevar8x32_epi32(v0, idx); // low 128 = his of v0
        let r1 = _mm256_permutevar8x32_epi32(v1, idx);
        let packed = _mm256_permute2x128_si256(r0, r1, 0x20);
        _mm256_storeu_si256(out.as_mut_ptr().add(base + i).cast(), packed);
        i += 8;
    }
    out.set_len(base + i);
    for pair in &pairs[i..] {
        out.push(pair[1]);
    }
}

/// AVX2-assisted difference: the scalar merge shape with the bulk-copy
/// boundaries found by the vector lower bound.
///
/// # Safety
/// Requires AVX2 (checked by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn difference_u32_avx2(set: &[u32], remove: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < set.len() {
        if j == remove.len() {
            out.extend_from_slice(&set[i..]);
            return;
        }
        let k = lower_bound_u32_avx2(&set[i..], remove[j]);
        out.extend_from_slice(&set[i..i + k]);
        i += k;
        if i < set.len() && set[i] == remove[j] {
            i += 1;
        }
        j += match set.get(i) {
            Some(&s) => lower_bound_u32_avx2(&remove[j..], s).max(1),
            None => return,
        };
        j = j.min(remove.len());
    }
}

/// AVX2-assisted two-way merge of sorted `u64` runs (ties keep the
/// left run first), bulk copies found by the vector lower bound.
///
/// # Safety
/// Requires AVX2 (checked by the dispatch layer).
#[target_feature(enable = "avx2")]
pub unsafe fn merge_u64_avx2(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        if i == a.len() {
            out.extend_from_slice(&b[j..]);
            return;
        }
        if j == b.len() {
            out.extend_from_slice(&a[i..]);
            return;
        }
        if a[i] <= b[j] {
            let k = match b[j].checked_add(1) {
                Some(t) => lower_bound_u64_avx2(&a[i..], t),
                None => a.len() - i,
            };
            out.extend_from_slice(&a[i..i + k]);
            i += k;
        } else {
            let k = lower_bound_u64_avx2(&b[j..], a[i]);
            out.extend_from_slice(&b[j..j + k]);
            j += k;
        }
    }
}
