//! Scalar reference kernels.
//!
//! Every vector kernel in [`crate::x86`] must produce output
//! bit-identical to the function of the same name here — these are the
//! semantics, the vector code is an implementation detail. They are
//! also the dispatch target on non-x86-64 builds and under
//! `NCQ_SIMD=off`, so they are written to be fast in their own right
//! (galloping, bulk copies), not as naive loops.

/// Smallest `i` with `hay[i] >= target`; `hay.len()` if none.
/// `hay` must be sorted ascending.
#[inline]
pub fn lower_bound_u32(hay: &[u32], target: u32) -> usize {
    hay.partition_point(|&x| x < target)
}

/// Smallest `i` with `hay[i] >= target`; `hay.len()` if none.
/// `hay` must be sorted ascending.
#[inline]
pub fn lower_bound_u64(hay: &[u64], target: u64) -> usize {
    hay.partition_point(|&x| x < target)
}

/// Intersection of two sorted, strictly increasing runs, appended to
/// `out`. Gallops through whichever side is currently ahead, exactly
/// like the posting-list intersection this kernel replaces.
pub fn intersect_u32_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1 + gallop(&a[i + 1..], b[j]),
            std::cmp::Ordering::Greater => j += 1 + gallop(&b[j + 1..], a[i]),
        }
    }
}

/// `set \ remove` over sorted, strictly increasing runs, appended to
/// `out`. Merge-structured with bulk copies of the kept stretches.
pub fn difference_u32_into(set: &[u32], remove: &[u32], out: &mut Vec<u32>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < set.len() {
        if j == remove.len() {
            out.extend_from_slice(&set[i..]);
            return;
        }
        // Keep everything below the next removal candidate.
        let k = lower_bound_u32(&set[i..], remove[j]);
        out.extend_from_slice(&set[i..i + k]);
        i += k;
        if i < set.len() && set[i] == remove[j] {
            i += 1;
        }
        // Skip removal candidates below the next survivor.
        j += match set.get(i) {
            Some(&s) => lower_bound_u32(&remove[j..], s).max(1),
            None => return,
        };
        j = j.min(remove.len());
    }
}

/// Two-way merge of sorted `u64` runs, appended to `out`. Ties keep
/// the left run's elements first (a stable merge), and equal stretches
/// are moved with bulk copies found by partition search.
pub fn merge_u64_into(a: &[u64], b: &[u64], out: &mut Vec<u64>) {
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        if i == a.len() {
            out.extend_from_slice(&b[j..]);
            return;
        }
        if j == b.len() {
            out.extend_from_slice(&a[i..]);
            return;
        }
        if a[i] <= b[j] {
            // Take the whole stretch of `a` at or below `b[j]` — ties
            // go left, so the boundary is the first element > b[j].
            let k = match b[j].checked_add(1) {
                Some(t) => lower_bound_u64(&a[i..], t),
                None => a.len() - i,
            };
            out.extend_from_slice(&a[i..i + k]);
            i += k;
        } else {
            let k = lower_bound_u64(&b[j..], a[i]);
            out.extend_from_slice(&b[j..j + k]);
            j += k;
        }
    }
}

/// Posting decode: append the high lane of each `[lo, hi]` pair to
/// `out`. A `(path, owner)` posting viewed as `[u32; 2]` yields its
/// owner column — the strictly increasing run the set kernels consume.
#[inline]
pub fn unpack_hi_u32(pairs: &[[u32; 2]], out: &mut Vec<u32>) {
    out.extend(pairs.iter().map(|p| p[1]));
}

/// Exponential probe + partition search: number of leading elements of
/// `list` that are `< target`.
#[inline]
fn gallop(list: &[u32], target: u32) -> usize {
    let mut hi = 1usize;
    while hi < list.len() && list[hi - 1] < target {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = hi.min(list.len());
    lo + list[lo..hi].partition_point(|&x| x < target)
}
