//! Ad-hoc microbenchmark of the raw kernels against their scalar
//! references, on pseudo-random sorted runs. Not a gate — `repro
//! --exp pr9` is — just a quick probe while tuning:
//!
//! ```sh
//! cargo run --release -p ncq-simd --example kernel_bench
//! ```

use ncq_simd::Mode;
use std::time::Instant;

fn mix(x: u64) -> u64 {
    // splitmix64 finalizer: cheap stateless pseudo-randomness.
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Sorted run of `n` distinct u32s, ~1/`density` of the key space.
fn run_of(seed: u64, n: usize, density: u64) -> Vec<u32> {
    let mut v = Vec::with_capacity(n);
    let mut x = 0u64;
    for i in 0..n {
        x += 1 + mix(seed ^ i as u64) % (2 * density - 1);
        v.push(x as u32);
    }
    v
}

fn bench(label: &str, a: &[u32], b: &[u32], reps: usize) {
    let mut out = Vec::new();
    let mut leg = |mode: Mode| {
        ncq_simd::set_mode_override(Some(mode));
        let t = Instant::now();
        for _ in 0..reps {
            ncq_simd::intersect_u32_into(
                std::hint::black_box(a),
                std::hint::black_box(b),
                &mut out,
            );
        }
        std::hint::black_box(&out);
        t.elapsed().as_secs_f64() * 1e3
    };
    let scalar = leg(Mode::Scalar);
    let vector = leg(Mode::Avx2);
    ncq_simd::set_mode_override(None);
    println!(
        "{label:<28} |a|={:<6} |b|={:<6} out={:<6} scalar={scalar:>7.2}ms vector={vector:>7.2}ms ratio={:.2}x",
        a.len(),
        b.len(),
        out.len(),
        scalar / vector,
    );
}

fn main() {
    println!("mode={}", ncq_simd::mode().name());
    for &n in &[1_000usize, 10_000, 100_000] {
        let reps = 40_000_000 / n.max(1);
        let a = run_of(1, n, 2);
        let b = run_of(2, n, 2);
        bench("equal-length ~50% overlap", &a, &b, reps);
        let rare = run_of(3, n / 16, 32);
        bench("16:1 skew", &a, &rare, reps);
    }
}
