//! Property suite: every dispatch target of every kernel must return
//! output bit-identical to the scalar reference, over random runs ×
//! random lane remainders × degenerate shapes × misaligned slice
//! heads. Modes are forced via `set_mode_override`, so the whole
//! matrix runs on any host — an ISA the CPU lacks is simply skipped
//! (the override caps at the best available).
//!
//! Each case also re-checks through the *public* dispatching entry
//! points, so the dispatch layer itself (not just the raw kernels) is
//! under test.

use ncq_simd::{self as simd, Mode};
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::sync::{Mutex, MutexGuard};

/// The mode override is process-global; serialize the tests that force
/// it so every leg really executes the ISA it claims to.
static MODE_LOCK: Mutex<()> = Mutex::new(());

fn lock_modes() -> MutexGuard<'static, ()> {
    MODE_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The modes this host can actually execute, deduplicated.
fn testable_modes() -> Vec<Mode> {
    let mut modes = vec![Mode::Scalar];
    for want in [Mode::Sse2, Mode::Avx2] {
        let got = simd::set_mode_override(Some(want));
        if got == want && !modes.contains(&got) {
            modes.push(got);
        }
    }
    simd::set_mode_override(None);
    modes
}

/// Sorted, strictly increasing random run. `span` controls density:
/// small spans force long shared stretches, large spans force skew.
fn sorted_run(rng: &mut StdRng, len: usize, span: u32) -> Vec<u32> {
    let mut v: Vec<u32> = (0..len).map(|_| rng.random_range(0..span.max(1))).collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Shapes that historically break lane code: empty, singleton, exactly
/// one vector, one-less / one-more than a vector, all-equal ties.
fn edge_runs() -> Vec<Vec<u32>> {
    vec![
        vec![],
        vec![7],
        (0..3).collect(),
        (0..4).collect(),
        (0..5).collect(),
        (0..7).collect(),
        (0..8).collect(),
        (0..9).collect(),
        (10..42).collect(),
        vec![u32::MAX - 1, u32::MAX],
        (0..100).map(|i| i * 1000).collect(),
    ]
}

/// Run `f` once per testable mode and assert all answers equal the
/// scalar one. Restores auto dispatch afterwards.
fn for_each_mode<T: PartialEq + std::fmt::Debug>(label: &str, f: impl Fn() -> T) {
    let scalar = {
        simd::set_mode_override(Some(Mode::Scalar));
        f()
    };
    for mode in testable_modes() {
        simd::set_mode_override(Some(mode));
        let got = f();
        assert_eq!(got, scalar, "{label}: {:?} diverged from scalar", mode);
    }
    simd::set_mode_override(None);
}

#[test]
fn lower_bound_u32_matches_partition_point() {
    let _guard = lock_modes();
    let mut rng = StdRng::seed_from_u64(0x9_01);
    let mut runs = edge_runs();
    for len in [0usize, 1, 2, 5, 31, 32, 33, 63, 64, 65, 200, 1000] {
        runs.push(sorted_run(&mut rng, len, 500));
        runs.push(sorted_run(&mut rng, len, u32::MAX));
    }
    for hay in &runs {
        // Misaligned heads: a sub-slice starting at offset 1..4 is no
        // longer 16-byte aligned; the kernels must not care.
        for off in 0..4.min(hay.len() + 1) {
            let hay = &hay[off..];
            let mut targets: Vec<u32> = vec![0, 1, u32::MAX];
            targets.extend(
                hay.iter()
                    .flat_map(|&x| [x.saturating_sub(1), x, x.saturating_add(1)]),
            );
            for _ in 0..8 {
                targets.push(rng.next_u64() as u32);
            }
            for t in targets {
                let expect = hay.partition_point(|&x| x < t);
                for_each_mode("lower_bound_u32", || simd::lower_bound_u32(hay, t));
                assert_eq!(simd::lower_bound_u32(hay, t), expect);
            }
        }
    }
}

#[test]
fn lower_bound_u64_matches_partition_point() {
    let _guard = lock_modes();
    let mut rng = StdRng::seed_from_u64(0x9_02);
    for len in [0usize, 1, 3, 4, 5, 15, 16, 17, 100, 1000] {
        let mut hay: Vec<u64> = (0..len).map(|_| rng.next_u64()).collect();
        hay.sort_unstable();
        for off in 0..3.min(hay.len() + 1) {
            let hay = &hay[off..];
            let mut targets: Vec<u64> = vec![0, u64::MAX];
            targets.extend(
                hay.iter()
                    .flat_map(|&x| [x.wrapping_sub(1), x, x.wrapping_add(1)]),
            );
            for t in targets {
                let expect = hay.partition_point(|&x| x < t);
                for_each_mode("lower_bound_u64", || simd::lower_bound_u64(hay, t));
                assert_eq!(simd::lower_bound_u64(hay, t), expect);
            }
        }
    }
}

#[test]
fn range_u64_matches_two_partition_points() {
    let _guard = lock_modes();
    let mut rng = StdRng::seed_from_u64(0x9_03);
    for len in [0usize, 1, 7, 16, 64, 300] {
        let mut hay: Vec<u64> = (0..len).map(|_| rng.random_range(0..10_000)).collect();
        hay.sort_unstable();
        for _ in 0..50 {
            let lo = rng.random_range(0..10_500u64);
            let hi = lo + rng.random_range(0..2_000u64);
            let expect = (
                hay.partition_point(|&x| x < lo),
                hay.partition_point(|&x| x < hi),
            );
            for_each_mode("range_u64", || simd::range_u64(&hay, lo, hi));
            assert_eq!(simd::range_u64(&hay, lo, hi), expect);
        }
    }
}

#[test]
fn range_u32_matches_two_partition_points() {
    let _guard = lock_modes();
    let mut rng = StdRng::seed_from_u64(0x9_08);
    for hay in edge_runs() {
        for _ in 0..30 {
            let lo = rng.next_u64() as u32 % 1100;
            let hi = lo.saturating_add(rng.next_u64() as u32 % 400);
            let expect = (
                hay.partition_point(|&x| x < lo),
                hay.partition_point(|&x| x < hi),
            );
            for_each_mode("range_u32", || simd::range_u32(&hay, lo, hi));
            assert_eq!(simd::range_u32(&hay, lo, hi), expect);
        }
    }
}

#[test]
fn intersect_matches_scalar_reference() {
    let _guard = lock_modes();
    let mut rng = StdRng::seed_from_u64(0x9_04);
    let mut cases: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
    for a in edge_runs() {
        for b in edge_runs() {
            cases.push((a.clone(), b));
        }
    }
    // Random pairs across densities: dense overlap, total skew, and
    // lengths straddling the 4-lane block width.
    for _ in 0..200 {
        let la = rng.random_range(0..70);
        let lb = rng.random_range(0..70);
        let span = *[60u32, 300, 5_000, u32::MAX]
            .get(rng.random_range(0..4))
            .unwrap();
        cases.push((
            sorted_run(&mut rng, la, span),
            sorted_run(&mut rng, lb, span),
        ));
    }
    for (a, b) in &cases {
        for off in 0..3.min(a.len() + 1) {
            let a = &a[off..];
            let expect: Vec<u32> = a
                .iter()
                .filter(|x| b.binary_search(x).is_ok())
                .copied()
                .collect();
            for_each_mode("intersect_u32", || {
                let mut out = Vec::new();
                simd::intersect_u32_into(a, b, &mut out);
                out
            });
            let mut out = Vec::new();
            simd::intersect_u32_into(a, b, &mut out);
            assert_eq!(out, expect);
        }
    }
}

#[test]
fn difference_matches_retain() {
    let _guard = lock_modes();
    let mut rng = StdRng::seed_from_u64(0x9_05);
    let mut cases: Vec<(Vec<u32>, Vec<u32>)> = Vec::new();
    for a in edge_runs() {
        for b in edge_runs() {
            cases.push((a.clone(), b));
        }
    }
    for _ in 0..200 {
        let la = rng.random_range(0..70);
        let lb = rng.random_range(0..70);
        let span = *[60u32, 300, 5_000].get(rng.random_range(0..3)).unwrap();
        cases.push((
            sorted_run(&mut rng, la, span),
            sorted_run(&mut rng, lb, span),
        ));
    }
    for (set, remove) in &cases {
        for off in 0..3.min(set.len() + 1) {
            let set = &set[off..];
            let expect: Vec<u32> = set
                .iter()
                .filter(|x| remove.binary_search(x).is_err())
                .copied()
                .collect();
            for_each_mode("difference_u32", || {
                let mut out = Vec::new();
                simd::difference_u32_into(set, remove, &mut out);
                out
            });
            let mut out = Vec::new();
            simd::difference_u32_into(set, remove, &mut out);
            assert_eq!(out, expect);
        }
    }
}

#[test]
fn unpack_hi_matches_field_walk() {
    let _guard = lock_modes();
    let mut rng = StdRng::seed_from_u64(0x9_09);
    // Lengths straddling both block widths (4 for SSE2, 8 for AVX2)
    // and their remainders.
    for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100, 1000] {
        let pairs: Vec<[u32; 2]> = (0..len)
            .map(|_| [rng.next_u64() as u32, rng.next_u64() as u32])
            .collect();
        for off in 0..3.min(pairs.len() + 1) {
            let pairs = &pairs[off..];
            let expect: Vec<u32> = pairs.iter().map(|p| p[1]).collect();
            for_each_mode("unpack_hi_u32", || {
                let mut out = Vec::new();
                simd::unpack_hi_u32(pairs, &mut out);
                out
            });
            // Appending must preserve an existing prefix.
            let mut out = vec![42u32];
            simd::unpack_hi_u32(pairs, &mut out);
            assert_eq!(out[0], 42);
            assert_eq!(&out[1..], expect);
        }
    }
}

#[test]
fn merge_u64_is_a_stable_merge() {
    let _guard = lock_modes();
    let mut rng = StdRng::seed_from_u64(0x9_06);
    // Tagged values: key in the high bits, provenance tag low, so a
    // stable merge is observable — ties must keep left-run tags first.
    let tagged = |rng: &mut StdRng, len: usize, tag: u64| -> Vec<u64> {
        let mut keys: Vec<u64> = (0..len).map(|_| rng.random_range(0..50u64)).collect();
        keys.sort_unstable();
        keys.into_iter().map(|k| k << 32 | tag).collect()
    };
    for _ in 0..300 {
        let la = rng.random_range(0..40);
        let lb = rng.random_range(0..40);
        let a = tagged(&mut rng, la, 1);
        let b = tagged(&mut rng, lb, 2);
        let mut expect = Vec::with_capacity(a.len() + b.len());
        {
            // Reference: the textbook stable merge.
            let (mut i, mut j) = (0, 0);
            while i < a.len() && j < b.len() {
                if a[i] <= b[j] {
                    expect.push(a[i]);
                    i += 1;
                } else {
                    expect.push(b[j]);
                    j += 1;
                }
            }
            expect.extend_from_slice(&a[i..]);
            expect.extend_from_slice(&b[j..]);
        }
        for_each_mode("merge_u64", || {
            let mut out = Vec::new();
            simd::merge_u64_into(&a, &b, &mut out);
            out
        });
        let mut out = Vec::new();
        simd::merge_u64_into(&a, &b, &mut out);
        assert_eq!(out, expect);
    }
    // u64::MAX keys exercise the checked_add boundary in the bulk-copy
    // stretch search.
    let a = vec![5, u64::MAX, u64::MAX];
    let b = vec![5, u64::MAX];
    for_each_mode("merge_u64 max", || {
        let mut out = Vec::new();
        simd::merge_u64_into(&a, &b, &mut out);
        out
    });
}

#[test]
fn merge_tagged_matches_sorted_concatenation() {
    let _guard = lock_modes();
    let mut rng = StdRng::seed_from_u64(0x9_07);
    for _ in 0..100 {
        let k = rng.random_range(0..9);
        let runs: Vec<Vec<u64>> = (0..k)
            .map(|tag| {
                let mut keys: Vec<u64> = (0..rng.random_range(0..30))
                    .map(|_| rng.random_range(0..60u64))
                    .collect();
                keys.sort_unstable();
                keys.dedup();
                keys.into_iter().map(|key| key << 32 | tag as u64).collect()
            })
            .collect();
        let refs: Vec<&[u64]> = runs.iter().map(Vec::as_slice).collect();
        // Keys are unique within a run, so sorting the concatenation by
        // the packed value == ordering by (key, run index): exactly the
        // batch executor's merge_tagged contract.
        let mut expect: Vec<u64> = runs.iter().flatten().copied().collect();
        expect.sort_unstable();
        for_each_mode("merge_tagged_u64", || {
            let mut out = Vec::new();
            simd::merge_tagged_u64(&refs, &mut out);
            out
        });
        let mut out = Vec::new();
        simd::merge_tagged_u64(&refs, &mut out);
        assert_eq!(out, expect);
    }
}
