//! Randomized property tests: random documents survive write → parse.
//!
//! Seeded loops over a deterministic PRNG stand in for proptest (the
//! offline build cannot fetch it); every case prints its seed on failure
//! so a reproduction is one `seed_from_u64` away.

use ncq_xml::{parse, write_document, Document, NodeId, WriteOptions};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A recipe for building a random document without borrowing issues:
/// a list of instructions interpreted against a stack of open elements.
#[derive(Debug, Clone)]
enum Op {
    Open(&'static str),
    Close,
    Text(String),
    Attr(&'static str, String),
}

const TAGS: [&str; 10] = [
    "article", "author", "title", "year", "bib", "item", "a", "b-c", "x_y", "n.s",
];

/// Printable text including XML specials and non-ASCII, never
/// whitespace-only (the default parse drops whitespace-only text nodes).
fn text_content(rng: &mut StdRng) -> String {
    const CHARS: [char; 12] = ['a', 'Z', '7', '<', '>', '&', '"', '\'', 'é', ' ', 'q', '.'];
    loop {
        let len = rng.random_range(1usize..20);
        let s: String = (0..len)
            .map(|_| CHARS[rng.random_range(0..CHARS.len())])
            .collect();
        let trimmed = s.trim();
        if !trimmed.is_empty() {
            return trimmed.to_owned();
        }
    }
}

fn ops(rng: &mut StdRng) -> Vec<Op> {
    let n = rng.random_range(0usize..60);
    (0..n)
        .map(|_| match rng.random_range(0usize..8) {
            0..=2 => Op::Open(TAGS[rng.random_range(0..TAGS.len())]),
            3..=4 => Op::Close,
            5..=6 => Op::Text(text_content(rng)),
            _ => Op::Attr(TAGS[rng.random_range(0..TAGS.len())], text_content(rng)),
        })
        .collect()
}

/// Interpret the recipe. Consecutive text children are skipped (the
/// parser would merge them; the builder does not).
fn build(ops: &[Op]) -> Document {
    let mut doc = Document::new("root");
    let mut stack: Vec<NodeId> = vec![doc.root()];
    let mut last_was_text: Vec<bool> = vec![false];
    for op in ops {
        let cur = *stack.last().unwrap();
        match op {
            Op::Open(tag) => {
                let id = doc.add_element(cur, tag);
                *last_was_text.last_mut().unwrap() = false;
                stack.push(id);
                last_was_text.push(false);
            }
            Op::Close => {
                if stack.len() > 1 {
                    stack.pop();
                    last_was_text.pop();
                }
            }
            Op::Text(s) => {
                if !*last_was_text.last().unwrap() {
                    doc.add_text(cur, s.clone());
                    *last_was_text.last_mut().unwrap() = true;
                }
            }
            Op::Attr(k, v) => {
                doc.set_attribute(cur, k, v.clone());
            }
        }
    }
    doc
}

const CASES: u64 = 256;

#[test]
fn compact_write_then_parse_is_identity() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = build(&ops(&mut rng));
        let text = write_document(&doc, WriteOptions::default());
        let doc2 = parse(&text).unwrap();
        assert!(doc.structural_eq(&doc2), "seed {seed}, document:\n{text}");
    }
}

#[test]
fn pretty_write_then_parse_is_identity() {
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1 << 32 | seed);
        let doc = build(&ops(&mut rng));
        let text = write_document(
            &doc,
            WriteOptions {
                indent: Some(2),
                declaration: true,
            },
        );
        let doc2 = parse(&text).unwrap();
        assert!(doc.structural_eq(&doc2), "seed {seed}, document:\n{text}");
    }
}

#[test]
fn parse_never_panics_on_arbitrary_input() {
    // Printable soup across ASCII and a few multibyte chars.
    const CHARS: [char; 20] = [
        '<', '>', '/', '=', '"', '\'', '&', ';', '!', '?', '[', ']', '-', 'a', 'x', ' ', 'é', '≤',
        '0', '9',
    ];
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2 << 32 | seed);
        let len = rng.random_range(0usize..200);
        let s: String = (0..len)
            .map(|_| CHARS[rng.random_range(0..CHARS.len())])
            .collect();
        let _ = parse(&s);
    }
}

#[test]
fn parse_never_panics_on_tag_soup() {
    // Biased towards well-formed-looking fragments.
    const PIECES: [&str; 12] = [
        "<a>",
        "</a>",
        "<a ",
        "b='",
        "'",
        "\"",
        "&amp;",
        "&#x",
        "<!--",
        "]]>",
        "<![CDATA[",
        "text ",
    ];
    for seed in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3 << 32 | seed);
        let n = rng.random_range(0usize..40);
        let s: String = (0..n)
            .map(|_| PIECES[rng.random_range(0..PIECES.len())])
            .collect();
        let _ = parse(&s);
    }
}
