//! Property-based tests: random documents survive write → parse.

use ncq_xml::{parse, write_document, Document, NodeId, WriteOptions};
use proptest::prelude::*;

/// A recipe for building a random document without borrowing issues:
/// a list of instructions interpreted against a stack of open elements.
#[derive(Debug, Clone)]
enum Op {
    Open(String),
    Close,
    Text(String),
    Attr(String, String),
}

fn tag_name() -> impl Strategy<Value = String> {
    // Names from a small vocabulary keep path summaries realistic.
    prop::sample::select(vec![
        "article", "author", "title", "year", "bib", "item", "a", "b-c", "x_y", "n.s",
    ])
    .prop_map(str::to_owned)
}

fn text_content() -> impl Strategy<Value = String> {
    // Printable text including XML specials and non-ASCII, but no
    // leading/trailing-whitespace-only strings (the default parse drops
    // whitespace-only text nodes).
    "[a-zA-Z0-9<>&\"'é ]{1,20}"
        .prop_filter("not whitespace-only", |s| !s.trim().is_empty())
        .prop_map(|s| s.trim().to_owned())
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => tag_name().prop_map(Op::Open),
            2 => Just(Op::Close),
            2 => text_content().prop_map(Op::Text),
            1 => (tag_name(), text_content()).prop_map(|(k, v)| Op::Attr(k, v)),
        ],
        0..60,
    )
}

/// Interpret the recipe. Text merging mirrors the parser: consecutive text
/// children merge into one node, so we merge while building too.
fn build(ops: &[Op]) -> Document {
    let mut doc = Document::new("root");
    let mut stack: Vec<NodeId> = vec![doc.root()];
    let mut last_was_text: Vec<bool> = vec![false];
    for op in ops {
        let cur = *stack.last().unwrap();
        match op {
            Op::Open(tag) => {
                let id = doc.add_element(cur, tag);
                *last_was_text.last_mut().unwrap() = false;
                stack.push(id);
                last_was_text.push(false);
            }
            Op::Close => {
                if stack.len() > 1 {
                    stack.pop();
                    last_was_text.pop();
                }
            }
            Op::Text(s) => {
                if *last_was_text.last().unwrap() {
                    // Merge with previous text node, as a parser would.
                    let prev = *doc.children(cur).last().unwrap();
                    let merged = format!("{}{}", doc.text(prev).unwrap(), s);
                    // Rebuild: documents are append-only, so emulate merge
                    // by a fresh doc is overkill — instead avoid the case.
                    // We just skip consecutive text instead.
                    let _ = merged;
                } else {
                    doc.add_text(cur, s.clone());
                    *last_was_text.last_mut().unwrap() = true;
                }
            }
            Op::Attr(k, v) => {
                // Attributes only on the innermost open element.
                doc.set_attribute(cur, k, v.clone());
            }
        }
    }
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn compact_write_then_parse_is_identity(recipe in ops()) {
        let doc = build(&recipe);
        let text = write_document(&doc, WriteOptions::default());
        let doc2 = parse(&text).unwrap();
        prop_assert!(doc.structural_eq(&doc2), "document:\n{text}");
    }

    #[test]
    fn pretty_write_then_parse_is_identity(recipe in ops()) {
        let doc = build(&recipe);
        let text = write_document(&doc, WriteOptions { indent: Some(2), declaration: true });
        let doc2 = parse(&text).unwrap();
        prop_assert!(doc.structural_eq(&doc2), "document:\n{text}");
    }

    #[test]
    fn parse_never_panics_on_arbitrary_input(s in "\\PC{0,200}") {
        let _ = parse(&s);
    }

    #[test]
    fn parse_never_panics_on_tag_soup(s in "[<>/a-z \"'=&;!?\\[\\]-]{0,120}") {
        let _ = parse(&s);
    }
}
