//! Edge cases and adversarial inputs for the XML parser.

use ncq_xml::{parse, parse_with_options, ParseErrorKind, ParseOptions};

#[test]
fn cdata_with_brackets_inside() {
    let d = parse("<a><![CDATA[x ]] y ] z >]]></a>").unwrap();
    assert_eq!(d.deep_text(d.root()), "x ]] y ] z >");
}

#[test]
fn text_may_contain_closing_bracket_sequence() {
    let d = parse("<a>x ]]&gt; y</a>").unwrap();
    assert_eq!(d.deep_text(d.root()), "x ]]> y");
}

#[test]
fn comment_with_single_dashes() {
    let d = parse("<a><!-- a - b - c -->t</a>").unwrap();
    assert_eq!(d.deep_text(d.root()), "t");
}

#[test]
fn processing_instruction_with_angle_content() {
    let d = parse("<a><?php if (1 < 2) echo 'x'; ?>t</a>").unwrap();
    assert_eq!(d.deep_text(d.root()), "t");
}

#[test]
fn doctype_with_nested_brackets_and_quotes() {
    let src = r#"<!DOCTYPE bib [
        <!ELEMENT bib (article*)>
        <!ENTITY % pe "<!ELEMENT x (y)>">
        <!ATTLIST article key CDATA #IMPLIED>
    ]><bib/>"#;
    let d = parse(src).unwrap();
    assert_eq!(d.tag_name(d.root()), Some("bib"));
}

#[test]
fn attribute_values_spanning_lines() {
    let d = parse("<a t='one\ntwo'/>").unwrap();
    assert_eq!(d.attribute(d.root(), "t"), Some("one\ntwo"));
}

#[test]
fn attribute_with_other_quote_inside() {
    let d = parse(r#"<a s='say "hi"' d="it's"/>"#).unwrap();
    assert_eq!(d.attribute(d.root(), "s"), Some("say \"hi\""));
    assert_eq!(d.attribute(d.root(), "d"), Some("it's"));
}

#[test]
fn whitespace_inside_tags_is_tolerated() {
    let d = parse("<a  x = '1'  ></ a >".replace("</ a >", "</a  >").as_str()).unwrap();
    assert_eq!(d.attribute(d.root(), "x"), Some("1"));
}

#[test]
fn closing_tag_with_space_before_gt() {
    let d = parse("<a>t</a >").unwrap();
    assert_eq!(d.deep_text(d.root()), "t");
}

#[test]
fn numeric_entity_edge_values() {
    // Lowest legal char (tab) and a high astral-plane char.
    let d = parse("<a>&#9;&#x10FFFF;</a>").unwrap();
    let t = d.deep_text(d.root());
    assert!(t.starts_with('\t'));
    assert!(t.ends_with('\u{10FFFF}'));
}

#[test]
fn entity_without_semicolon_fails_cleanly() {
    let e = parse("<a>&amp</a>").unwrap_err();
    assert!(matches!(e.kind, ParseErrorKind::InvalidEntity { .. }));
}

#[test]
fn lt_inside_attribute_value_is_rejected() {
    let e = parse("<a t='x<y'/>").unwrap_err();
    assert!(matches!(e.kind, ParseErrorKind::UnexpectedChar { .. }));
}

#[test]
fn stray_lt_at_eof() {
    let e = parse("<a><").unwrap_err();
    assert!(matches!(
        e.kind,
        ParseErrorKind::InvalidName { .. } | ParseErrorKind::UnexpectedEof { .. }
    ));
}

#[test]
fn tag_names_with_namespace_prefixes_pass_through() {
    let d = parse("<ns:a xmlns:ns='urn:x'><ns:b/></ns:a>").unwrap();
    assert_eq!(d.tag_name(d.root()), Some("ns:a"));
    assert_eq!(d.attribute(d.root(), "xmlns:ns"), Some("urn:x"));
}

#[test]
fn names_with_dots_dashes_underscores() {
    let d = parse("<a-b.c_d><x.y/></a-b.c_d>").unwrap();
    assert_eq!(d.tag_name(d.root()), Some("a-b.c_d"));
}

#[test]
fn digit_leading_name_is_invalid() {
    let e = parse("<1a/>").unwrap_err();
    assert!(matches!(e.kind, ParseErrorKind::InvalidName { .. }));
}

#[test]
fn very_wide_documents_parse() {
    let mut src = String::from("<r>");
    for i in 0..20_000 {
        src.push_str(&format!("<c i='{i}'/>"));
    }
    src.push_str("</r>");
    let d = parse(&src).unwrap();
    assert_eq!(d.children(d.root()).len(), 20_000);
}

#[test]
fn many_attributes_on_one_element() {
    let mut src = String::from("<r");
    for i in 0..500 {
        src.push_str(&format!(" a{i}='{i}'"));
    }
    src.push_str("/>");
    let d = parse(&src).unwrap();
    assert_eq!(d.attributes(d.root()).len(), 500);
    assert_eq!(d.attribute(d.root(), "a499"), Some("499"));
}

#[test]
fn crlf_line_endings_parse() {
    let d = parse("<a>\r\n  <b>x</b>\r\n</a>").unwrap();
    assert_eq!(d.deep_text(d.root()), "x");
}

#[test]
fn keep_whitespace_preserves_crlf_text() {
    let d = parse_with_options(
        "<a>\r\n</a>",
        ParseOptions {
            keep_whitespace_text: true,
            trim_text: false,
        },
    )
    .unwrap();
    assert_eq!(d.deep_text(d.root()), "\r\n");
}

#[test]
fn root_after_comment_only_prolog() {
    let d = parse("<!-- header --><a/><!-- trailer -->").unwrap();
    assert_eq!(d.tag_name(d.root()), Some("a"));
}

#[test]
fn pi_and_comment_after_root_are_allowed() {
    let d = parse("<a/><?post data?>\n<!-- done -->").unwrap();
    assert_eq!(d.len(), 1);
}

#[test]
fn empty_attribute_value() {
    let d = parse("<a x=''/>").unwrap();
    assert_eq!(d.attribute(d.root(), "x"), Some(""));
}

#[test]
fn mixed_content_order_is_preserved() {
    let d = parse("<p>one<b>two</b>three<i>four</i>five</p>").unwrap();
    let kinds: Vec<String> = d
        .children(d.root())
        .iter()
        .map(|&c| match d.kind(c) {
            ncq_xml::NodeKind::Text(s) => format!("#{s}"),
            ncq_xml::NodeKind::Element(_) => d.tag_name(c).unwrap().to_string(),
        })
        .collect();
    assert_eq!(kinds, vec!["#one", "b", "#three", "i", "#five"]);
}
