//! A byte cursor over the source text with line/column tracking.
//!
//! The parser is byte-oriented: XML markup is pure ASCII, and UTF-8
//! multi-byte sequences can only occur inside names, text and attribute
//! values, where they are copied through verbatim.

use crate::error::Position;

/// Read head over the input string.
#[derive(Debug, Clone)]
pub struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    offset: usize,
    line: u32,
    column: u32,
}

impl<'a> Cursor<'a> {
    /// Create a cursor at the start of `src`.
    pub fn new(src: &'a str) -> Cursor<'a> {
        Cursor {
            src,
            bytes: src.as_bytes(),
            offset: 0,
            line: 1,
            column: 1,
        }
    }

    /// Current position (for error reporting).
    pub fn position(&self) -> Position {
        Position {
            line: self.line,
            column: self.column,
            offset: self.offset,
        }
    }

    /// Whether the whole input has been consumed.
    pub fn is_eof(&self) -> bool {
        self.offset >= self.bytes.len()
    }

    /// Current byte offset.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Look at the current byte without consuming it.
    pub fn peek(&self) -> Option<u8> {
        self.bytes.get(self.offset).copied()
    }

    /// Look `n` bytes ahead of the current byte.
    pub fn peek_at(&self, n: usize) -> Option<u8> {
        self.bytes.get(self.offset + n).copied()
    }

    /// Consume and return the current byte.
    pub fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.offset += 1;
        if b == b'\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(b)
    }

    /// Whether the remaining input starts with `prefix`.
    pub fn starts_with(&self, prefix: &str) -> bool {
        self.src[self.offset..].starts_with(prefix)
    }

    /// Consume `prefix` if the input starts with it; report success.
    pub fn eat(&mut self, prefix: &str) -> bool {
        if self.starts_with(prefix) {
            for _ in 0..prefix.len() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    /// Consume bytes while `pred` holds; return the consumed slice.
    pub fn eat_while(&mut self, mut pred: impl FnMut(u8) -> bool) -> &'a str {
        let start = self.offset;
        while let Some(b) = self.peek() {
            if !pred(b) {
                break;
            }
            self.bump();
        }
        &self.src[start..self.offset]
    }

    /// Skip ASCII whitespace; return how many bytes were skipped.
    pub fn skip_whitespace(&mut self) -> usize {
        self.eat_while(|b| b.is_ascii_whitespace()).len()
    }

    /// Consume everything up to (but not including) `needle`, returning the
    /// consumed slice, or `None` if `needle` never occurs.
    pub fn eat_until(&mut self, needle: &str) -> Option<&'a str> {
        let rest = &self.src[self.offset..];
        let idx = rest.find(needle)?;
        let start = self.offset;
        for _ in 0..idx {
            self.bump();
        }
        Some(&self.src[start..self.offset])
    }

    /// The remaining unconsumed input (for diagnostics and tests).
    pub fn rest(&self) -> &'a str {
        &self.src[self.offset..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_tracks_lines_and_columns() {
        let mut c = Cursor::new("ab\ncd");
        assert_eq!(c.position().line, 1);
        c.bump(); // a
        c.bump(); // b
        assert_eq!(c.position().column, 3);
        c.bump(); // \n
        assert_eq!(c.position().line, 2);
        assert_eq!(c.position().column, 1);
        c.bump(); // c
        assert_eq!(c.position().column, 2);
    }

    #[test]
    fn eat_consumes_only_on_match() {
        let mut c = Cursor::new("<?xml?>");
        assert!(!c.eat("<!"));
        assert_eq!(c.offset(), 0);
        assert!(c.eat("<?xml"));
        assert_eq!(c.rest(), "?>");
    }

    #[test]
    fn eat_while_stops_at_predicate_boundary() {
        let mut c = Cursor::new("name>rest");
        let name = c.eat_while(|b| b != b'>');
        assert_eq!(name, "name");
        assert_eq!(c.peek(), Some(b'>'));
    }

    #[test]
    fn eat_until_finds_needle() {
        let mut c = Cursor::new("hello]]>tail");
        let before = c.eat_until("]]>").unwrap();
        assert_eq!(before, "hello");
        assert!(c.starts_with("]]>"));
    }

    #[test]
    fn eat_until_missing_needle_returns_none() {
        let mut c = Cursor::new("no terminator");
        assert!(c.eat_until("]]>").is_none());
        // Cursor must be unmoved on failure.
        assert_eq!(c.offset(), 0);
    }

    #[test]
    fn skip_whitespace_counts_bytes() {
        let mut c = Cursor::new("  \t\nx");
        assert_eq!(c.skip_whitespace(), 4);
        assert_eq!(c.peek(), Some(b'x'));
        assert_eq!(c.skip_whitespace(), 0);
    }

    #[test]
    fn peek_at_looks_ahead() {
        let c = Cursor::new("abc");
        assert_eq!(c.peek_at(0), Some(b'a'));
        assert_eq!(c.peek_at(2), Some(b'c'));
        assert_eq!(c.peek_at(3), None);
    }
}
