//! Serialize a [`Document`] back to XML text.

use crate::escape::{escape_attribute, escape_text};
use crate::tree::{Document, NodeId, NodeKind};
use std::fmt::Write as _;

/// Serialization knobs for [`write_document`].
#[derive(Debug, Clone, Copy, Default)]
pub struct WriteOptions {
    /// Pretty-print with this many spaces per depth level; `None` writes
    /// the document without any inserted whitespace (lossless with respect
    /// to the tree model — pretty printing adds whitespace text that a
    /// whitespace-dropping parse removes again).
    pub indent: Option<usize>,
    /// Emit an `<?xml version="1.0" encoding="UTF-8"?>` declaration.
    pub declaration: bool,
}

/// Serialize the whole document.
pub fn write_document(doc: &Document, options: WriteOptions) -> String {
    let mut out = String::with_capacity(doc.len() * 16);
    if options.declaration {
        out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>");
        if options.indent.is_some() {
            out.push('\n');
        }
    }
    write_node(doc, doc.root(), options, 0, &mut out);
    out
}

fn write_node(doc: &Document, node: NodeId, options: WriteOptions, depth: usize, out: &mut String) {
    match doc.kind(node) {
        NodeKind::Text(s) => {
            indent(options, depth, out);
            out.push_str(&escape_text(s));
        }
        NodeKind::Element(_) => {
            let tag = doc.tag_name(node).expect("element has a tag");
            indent(options, depth, out);
            out.push('<');
            out.push_str(tag);
            for attr in doc.attributes(node) {
                let name = doc.symbols().resolve(attr.name);
                let _ = write!(out, " {}=\"{}\"", name, escape_attribute(&attr.value));
            }
            let children = doc.children(node);
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                // Mixed content (any text child) suppresses indentation for
                // the element body so text round-trips byte-exactly.
                let mixed = children
                    .iter()
                    .any(|&c| matches!(doc.kind(c), NodeKind::Text(_)));
                let child_opts = if mixed {
                    WriteOptions {
                        indent: None,
                        ..options
                    }
                } else {
                    options
                };
                for &c in children {
                    write_node(doc, c, child_opts, depth + 1, out);
                }
                indent(child_opts, depth, out);
                out.push_str("</");
                out.push_str(tag);
                out.push('>');
            }
        }
    }
}

fn indent(options: WriteOptions, depth: usize, out: &mut String) {
    if let Some(width) = options.indent {
        if !out.is_empty() {
            out.push('\n');
        }
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn compact_writer_round_trips() {
        let src = r#"<a x="1"><b>text &amp; more</b><c/></a>"#;
        let doc = parse(src).unwrap();
        let written = write_document(&doc, WriteOptions::default());
        assert_eq!(written, src);
    }

    #[test]
    fn empty_elements_use_self_closing_form() {
        let doc = parse("<a></a>").unwrap();
        assert_eq!(write_document(&doc, WriteOptions::default()), "<a/>");
    }

    #[test]
    fn declaration_is_emitted_on_request() {
        let doc = parse("<a/>").unwrap();
        let s = write_document(
            &doc,
            WriteOptions {
                indent: None,
                declaration: true,
            },
        );
        assert_eq!(s, "<?xml version=\"1.0\" encoding=\"UTF-8\"?><a/>");
    }

    #[test]
    fn pretty_printing_indents_element_only_content() {
        let doc = parse("<a><b><c/></b></a>").unwrap();
        let s = write_document(
            &doc,
            WriteOptions {
                indent: Some(2),
                declaration: false,
            },
        );
        assert_eq!(s, "<a>\n  <b>\n    <c/>\n  </b>\n</a>");
    }

    #[test]
    fn pretty_printing_keeps_mixed_content_inline() {
        let doc = parse("<a><b>hi</b></a>").unwrap();
        let s = write_document(
            &doc,
            WriteOptions {
                indent: Some(2),
                declaration: false,
            },
        );
        assert_eq!(s, "<a>\n  <b>hi</b>\n</a>");
    }

    #[test]
    fn pretty_printed_output_reparses_to_same_tree() {
        let src =
            r#"<bib><article key="k"><title>T &lt; U</title><year>1999</year></article></bib>"#;
        let doc = parse(src).unwrap();
        let pretty = write_document(
            &doc,
            WriteOptions {
                indent: Some(4),
                declaration: true,
            },
        );
        let doc2 = parse(&pretty).unwrap();
        assert!(doc.structural_eq(&doc2));
    }

    #[test]
    fn attribute_specials_are_escaped() {
        let mut doc = crate::tree::Document::new("a");
        let root = doc.root();
        doc.set_attribute(root, "v", "a\"b<c>&\n\t");
        let s = write_document(&doc, WriteOptions::default());
        assert_eq!(s, "<a v=\"a&quot;b&lt;c&gt;&amp;&#10;&#9;\"/>");
        let back = parse(&s).unwrap();
        assert_eq!(back.attribute(back.root(), "v"), Some("a\"b<c>&\n\t"));
    }
}
