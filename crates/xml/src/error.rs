//! Parse errors with source positions.

use std::fmt;

/// Position inside the source text (1-based line/column, 0-based byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Position {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in bytes within the line).
    pub column: u32,
    /// 0-based byte offset from the start of the input.
    pub offset: usize,
}

impl Position {
    /// The position of the first byte.
    pub fn start() -> Position {
        Position {
            line: 1,
            column: 1,
            offset: 0,
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// What went wrong while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof {
        /// What the parser was in the middle of.
        while_parsing: &'static str,
    },
    /// A tag or attribute name started with an illegal character.
    InvalidName {
        /// The offending byte, if any.
        found: Option<char>,
    },
    /// `</a>` closed `<b>`.
    MismatchedClosingTag {
        /// The open element's name.
        expected: String,
        /// The name found in the closing tag.
        found: String,
    },
    /// A closing tag appeared with no element open.
    UnexpectedClosingTag {
        /// The name found in the stray closing tag.
        found: String,
    },
    /// An entity reference could not be decoded.
    InvalidEntity {
        /// The raw entity text, without `&`/`;`.
        entity: String,
    },
    /// A character that may not appear here.
    UnexpectedChar {
        /// The offending character.
        found: char,
        /// What was expected instead.
        expected: &'static str,
    },
    /// Document has content after the root element closed.
    TrailingContent,
    /// Document has more than one root element.
    MultipleRoots,
    /// Document contains no root element at all.
    NoRootElement,
    /// The same attribute appeared twice on one element.
    DuplicateAttribute {
        /// The repeated attribute name.
        name: String,
    },
}

impl fmt::Display for ParseErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseErrorKind::UnexpectedEof { while_parsing } => {
                write!(f, "unexpected end of input while parsing {while_parsing}")
            }
            ParseErrorKind::InvalidName { found: Some(c) } => {
                write!(f, "invalid name starting with {c:?}")
            }
            ParseErrorKind::InvalidName { found: None } => write!(f, "empty name"),
            ParseErrorKind::MismatchedClosingTag { expected, found } => {
                write!(f, "closing tag </{found}> does not match open <{expected}>")
            }
            ParseErrorKind::UnexpectedClosingTag { found } => {
                write!(f, "closing tag </{found}> with no element open")
            }
            ParseErrorKind::InvalidEntity { entity } => {
                write!(f, "unknown or malformed entity &{entity};")
            }
            ParseErrorKind::UnexpectedChar { found, expected } => {
                write!(f, "unexpected character {found:?}, expected {expected}")
            }
            ParseErrorKind::TrailingContent => write!(f, "content after the root element"),
            ParseErrorKind::MultipleRoots => write!(f, "more than one root element"),
            ParseErrorKind::NoRootElement => write!(f, "no root element found"),
            ParseErrorKind::DuplicateAttribute { name } => {
                write!(f, "duplicate attribute {name:?}")
            }
        }
    }
}

/// A parse error, locating the problem inside the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Classification and details.
    pub kind: ParseErrorKind,
    /// Where the problem was detected.
    pub position: Position,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.kind, self.position)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_position() {
        let e = ParseError {
            kind: ParseErrorKind::TrailingContent,
            position: Position {
                line: 3,
                column: 7,
                offset: 42,
            },
        };
        assert_eq!(e.to_string(), "content after the root element at 3:7");
    }

    #[test]
    fn display_mismatched_tag() {
        let k = ParseErrorKind::MismatchedClosingTag {
            expected: "a".into(),
            found: "b".into(),
        };
        assert_eq!(k.to_string(), "closing tag </b> does not match open <a>");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        let e = ParseError {
            kind: ParseErrorKind::NoRootElement,
            position: Position::start(),
        };
        takes_err(&e);
    }
}
