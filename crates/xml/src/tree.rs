//! Arena-based XML syntax tree: the conceptual data model of the paper.
//!
//! A [`Document`] owns a flat arena of [`Node`]s addressed by [`NodeId`].
//! Two node kinds exist:
//!
//! * **Element** nodes carry an interned tag name, an ordered attribute
//!   list, and an ordered child list (the paper's `rank` function is the
//!   child-vector position).
//! * **Text** nodes carry character data. They correspond to the `cdata`
//!   nodes drawn in Figure 1 of the paper — PCDATA and CDATA are not
//!   distinguished, exactly as the paper's "common simplification".
//!
//! The arena layout guarantees that a node created after its parent has a
//! larger `NodeId`; builders in this crate and the parser always create
//! nodes parent-first, so `NodeId` order is a topological (and for the
//! parser: document/depth-first) order. `ncq-store` relies on this when it
//! assigns OIDs.

use crate::symbols::{Symbol, SymbolTable};
use std::fmt;

/// Index of a node inside a [`Document`] arena.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Raw arena index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct from a raw index previously obtained via [`NodeId::index`].
    #[inline]
    pub fn from_index(index: usize) -> NodeId {
        NodeId(u32::try_from(index).expect("document too large"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A single attribute `name="value"` on an element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Interned attribute name.
    pub name: Symbol,
    /// Attribute value with entities already decoded.
    pub value: String,
}

/// What a node is: an element or character data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with an interned tag name.
    Element(Symbol),
    /// Character data (the paper's *cdata* node).
    Text(String),
}

/// One node of the syntax tree.
#[derive(Debug, Clone)]
pub struct Node {
    kind: NodeKind,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    attrs: Vec<Attribute>,
}

/// A rooted XML syntax tree with its symbol table.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
    symbols: SymbolTable,
}

impl Document {
    /// Create a document with a single root element named `root_tag`.
    pub fn new(root_tag: &str) -> Document {
        let mut symbols = SymbolTable::new();
        let sym = symbols.intern(root_tag);
        Document {
            nodes: vec![Node {
                kind: NodeKind::Element(sym),
                parent: None,
                children: Vec::new(),
                attrs: Vec::new(),
            }],
            root: NodeId(0),
            symbols,
        }
    }

    /// The distinguished root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total number of nodes (elements + text).
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document holds only the root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// The symbol table for tag/attribute names.
    #[inline]
    pub fn symbols(&self) -> &SymbolTable {
        &self.symbols
    }

    /// Append a new element child under `parent` and return its id.
    pub fn add_element(&mut self, parent: NodeId, tag: &str) -> NodeId {
        let sym = self.symbols.intern(tag);
        self.push_node(parent, NodeKind::Element(sym))
    }

    /// Append a new text (cdata) child under `parent` and return its id.
    pub fn add_text(&mut self, parent: NodeId, text: impl Into<String>) -> NodeId {
        self.push_node(parent, NodeKind::Text(text.into()))
    }

    /// Set (or overwrite) an attribute on an element node.
    ///
    /// # Panics
    /// Panics if `node` is a text node.
    pub fn set_attribute(&mut self, node: NodeId, name: &str, value: impl Into<String>) {
        assert!(
            matches!(self.nodes[node.index()].kind, NodeKind::Element(_)),
            "attributes only exist on element nodes"
        );
        let sym = self.symbols.intern(name);
        let attrs = &mut self.nodes[node.index()].attrs;
        if let Some(a) = attrs.iter_mut().find(|a| a.name == sym) {
            a.value = value.into();
        } else {
            attrs.push(Attribute {
                name: sym,
                value: value.into(),
            });
        }
    }

    fn push_node(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        assert!(parent.index() < self.nodes.len(), "dangling parent id");
        let id = NodeId(u32::try_from(self.nodes.len()).expect("document too large"));
        self.nodes.push(Node {
            kind,
            parent: Some(parent),
            children: Vec::new(),
            attrs: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// The node's kind.
    #[inline]
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.nodes[id.index()].kind
    }

    /// The parent, `None` for the root.
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.nodes[id.index()].parent
    }

    /// The ordered children (the paper's `rank` order).
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.nodes[id.index()].children
    }

    /// The attributes of an element (empty slice for text nodes).
    #[inline]
    pub fn attributes(&self, id: NodeId) -> &[Attribute] {
        &self.nodes[id.index()].attrs
    }

    /// Tag name of an element node, `None` for text nodes.
    pub fn tag_name(&self, id: NodeId) -> Option<&str> {
        match self.nodes[id.index()].kind {
            NodeKind::Element(sym) => Some(self.symbols.resolve(sym)),
            NodeKind::Text(_) => None,
        }
    }

    /// Interned tag symbol of an element node, `None` for text nodes.
    pub fn tag_symbol(&self, id: NodeId) -> Option<Symbol> {
        match self.nodes[id.index()].kind {
            NodeKind::Element(sym) => Some(sym),
            NodeKind::Text(_) => None,
        }
    }

    /// Character data of a text node, `None` for elements.
    pub fn text(&self, id: NodeId) -> Option<&str> {
        match &self.nodes[id.index()].kind {
            NodeKind::Text(s) => Some(s),
            NodeKind::Element(_) => None,
        }
    }

    /// Attribute value by name on an element node.
    pub fn attribute(&self, id: NodeId, name: &str) -> Option<&str> {
        let sym = self.symbols.get(name)?;
        self.nodes[id.index()]
            .attrs
            .iter()
            .find(|a| a.name == sym)
            .map(|a| a.value.as_str())
    }

    /// Rank of a node among its siblings (0-based), 0 for the root.
    pub fn rank(&self, id: NodeId) -> usize {
        match self.parent(id) {
            None => 0,
            Some(p) => self
                .children(p)
                .iter()
                .position(|&c| c == id)
                .expect("child missing from parent's child list"),
        }
    }

    /// Depth of a node: 0 for the root.
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count() - 1
    }

    /// Iterate `id, parent(id), …, root` (inclusive on both ends).
    pub fn ancestors(&self, id: NodeId) -> Ancestors<'_> {
        Ancestors {
            doc: self,
            next: Some(id),
        }
    }

    /// Depth-first pre-order traversal of the whole document.
    pub fn iter_depth_first(&self) -> DepthFirst<'_> {
        DepthFirst {
            doc: self,
            stack: vec![self.root],
        }
    }

    /// All node ids in arena order (parents before children, but not
    /// necessarily document order if built out of order).
    pub fn iter_arena(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// Concatenated text of all descendant text nodes, in document order.
    pub fn deep_text(&self, id: NodeId) -> String {
        let mut out = String::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if let NodeKind::Text(s) = &self.nodes[n.index()].kind {
                out.push_str(s);
            }
            // Push children in reverse so the leftmost is popped first.
            for &c in self.nodes[n.index()].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Find the first descendant element (pre-order) with the given tag.
    pub fn find_element(&self, from: NodeId, tag: &str) -> Option<NodeId> {
        let sym = self.symbols.get(tag)?;
        self.iter_subtree(from)
            .find(|&n| self.tag_symbol(n) == Some(sym))
    }

    /// Depth-first pre-order traversal of the subtree rooted at `from`.
    pub fn iter_subtree(&self, from: NodeId) -> DepthFirst<'_> {
        DepthFirst {
            doc: self,
            stack: vec![from],
        }
    }

    /// Structural equality, ignoring symbol numbering (two documents built
    /// in different label orders can still be equal).
    pub fn structural_eq(&self, other: &Document) -> bool {
        fn eq_rec(a: &Document, an: NodeId, b: &Document, bn: NodeId) -> bool {
            match (a.kind(an), b.kind(bn)) {
                (NodeKind::Text(x), NodeKind::Text(y)) => x == y,
                (NodeKind::Element(_), NodeKind::Element(_)) => {
                    if a.tag_name(an) != b.tag_name(bn) {
                        return false;
                    }
                    let aa = a.attributes(an);
                    let ba = b.attributes(bn);
                    if aa.len() != ba.len() {
                        return false;
                    }
                    for (x, y) in aa.iter().zip(ba.iter()) {
                        if a.symbols.resolve(x.name) != b.symbols.resolve(y.name)
                            || x.value != y.value
                        {
                            return false;
                        }
                    }
                    let ac = a.children(an);
                    let bc = b.children(bn);
                    ac.len() == bc.len()
                        && ac.iter().zip(bc.iter()).all(|(&x, &y)| eq_rec(a, x, b, y))
                }
                _ => false,
            }
        }
        eq_rec(self, self.root(), other, other.root())
    }
}

/// Iterator over a node's ancestors, produced by [`Document::ancestors`].
pub struct Ancestors<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Ancestors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.parent(cur);
        Some(cur)
    }
}

/// Depth-first pre-order iterator, produced by [`Document::iter_depth_first`].
pub struct DepthFirst<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for DepthFirst<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.stack.pop()?;
        for &c in self.doc.children(cur).iter().rev() {
            self.stack.push(c);
        }
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build the running example of the paper's Figure 1 (one article).
    fn small_bib() -> Document {
        let mut d = Document::new("bibliography");
        let inst = d.add_element(d.root(), "institute");
        let art = d.add_element(inst, "article");
        d.set_attribute(art, "key", "BB99");
        let author = d.add_element(art, "author");
        let first = d.add_element(author, "firstname");
        d.add_text(first, "Ben");
        let last = d.add_element(author, "lastname");
        d.add_text(last, "Bit");
        let title = d.add_element(art, "title");
        d.add_text(title, "How to Hack");
        let year = d.add_element(art, "year");
        d.add_text(year, "1999");
        d
    }

    #[test]
    fn root_has_no_parent() {
        let d = small_bib();
        assert_eq!(d.parent(d.root()), None);
        assert_eq!(d.depth(d.root()), 0);
    }

    #[test]
    fn children_preserve_rank_order() {
        let d = small_bib();
        let art = d.find_element(d.root(), "article").unwrap();
        let tags: Vec<&str> = d
            .children(art)
            .iter()
            .map(|&c| d.tag_name(c).unwrap())
            .collect();
        assert_eq!(tags, vec!["author", "title", "year"]);
        for (i, &c) in d.children(art).iter().enumerate() {
            assert_eq!(d.rank(c), i);
        }
    }

    #[test]
    fn attribute_lookup() {
        let d = small_bib();
        let art = d.find_element(d.root(), "article").unwrap();
        assert_eq!(d.attribute(art, "key"), Some("BB99"));
        assert_eq!(d.attribute(art, "missing"), None);
    }

    #[test]
    fn set_attribute_overwrites() {
        let mut d = Document::new("r");
        let root = d.root();
        d.set_attribute(root, "a", "1");
        d.set_attribute(root, "a", "2");
        assert_eq!(d.attribute(root, "a"), Some("2"));
        assert_eq!(d.attributes(root).len(), 1);
    }

    #[test]
    #[should_panic(expected = "attributes only exist on element nodes")]
    fn set_attribute_on_text_panics() {
        let mut d = Document::new("r");
        let t = d.add_text(d.root(), "hello");
        d.set_attribute(t, "a", "1");
    }

    #[test]
    fn ancestors_walk_to_root() {
        let d = small_bib();
        let ben = d
            .iter_depth_first()
            .find(|&n| d.text(n) == Some("Ben"))
            .unwrap();
        let path: Vec<Option<&str>> = d.ancestors(ben).map(|n| d.tag_name(n)).collect();
        assert_eq!(
            path,
            vec![
                None, // the text node itself
                Some("firstname"),
                Some("author"),
                Some("article"),
                Some("institute"),
                Some("bibliography"),
            ]
        );
    }

    #[test]
    fn depth_first_is_document_order() {
        let d = small_bib();
        let order: Vec<String> = d
            .iter_depth_first()
            .map(|n| match d.kind(n) {
                NodeKind::Element(_) => d.tag_name(n).unwrap().to_string(),
                NodeKind::Text(s) => format!("#{s}"),
            })
            .collect();
        assert_eq!(
            order,
            vec![
                "bibliography",
                "institute",
                "article",
                "author",
                "firstname",
                "#Ben",
                "lastname",
                "#Bit",
                "title",
                "#How to Hack",
                "year",
                "#1999",
            ]
        );
    }

    #[test]
    fn deep_text_concatenates_in_document_order() {
        let d = small_bib();
        let author = d.find_element(d.root(), "author").unwrap();
        assert_eq!(d.deep_text(author), "BenBit");
    }

    #[test]
    fn node_ids_are_parent_first() {
        let d = small_bib();
        for n in d.iter_arena() {
            if let Some(p) = d.parent(n) {
                assert!(p < n, "parent must be allocated before child");
            }
        }
    }

    #[test]
    fn structural_eq_ignores_intern_order() {
        let mut a = Document::new("r");
        let x = a.add_element(a.root(), "x");
        a.add_element(a.root(), "y");
        a.add_text(x, "t");

        // Same shape, but interning "y" before "x".
        let mut b = Document::new("r");
        b.symbols.intern("y");
        let x2 = b.add_element(b.root(), "x");
        b.add_element(b.root(), "y");
        b.add_text(x2, "t");

        assert!(a.structural_eq(&b));
    }

    #[test]
    fn structural_eq_detects_differences() {
        let mut a = Document::new("r");
        a.add_text(a.root(), "one");
        let mut b = Document::new("r");
        b.add_text(b.root(), "two");
        assert!(!a.structural_eq(&b));

        let mut c = Document::new("r");
        c.set_attribute(c.root(), "k", "v");
        let d2 = Document::new("r");
        assert!(!c.structural_eq(&d2));
    }

    #[test]
    fn len_counts_all_nodes() {
        let d = small_bib();
        // bibliography, institute, article, author, firstname, #Ben,
        // lastname, #Bit, title, #How to Hack, year, #1999
        assert_eq!(d.len(), 12);
    }
}
