//! # ncq-xml — XML substrate for nearest concept queries
//!
//! A from-scratch XML 1.0 subset parser and an arena-based syntax-tree model
//! implementing the *conceptual data model* of Schmidt, Kersten &
//! Windhouwer, *"Querying XML Documents Made Easy: Nearest Concept
//! Queries"* (ICDE 2001), Definition 1:
//!
//! > An XML document is a rooted tree `D = (V, E, label_E, label_A, rank, r)`
//! > with nodes `V`, edges `E ⊆ V × V`, a distinguished root `r`, element
//! > labels `label_E`, attribute pairs `label_A`, character data modelled as
//! > a special attribute of nodes, and `rank` establishing sibling order.
//!
//! The [`tree::Document`] arena realizes exactly this: element nodes carry a
//! [`symbols::Symbol`] label and attribute list, character data becomes a
//! dedicated *cdata* child node (mirroring the `cdata` nodes of the paper's
//! Figure 1), and sibling order is the order of the `children` vector.
//!
//! ## Supported XML subset
//!
//! * elements, attributes, character data
//! * `<![CDATA[ … ]]>` sections (merged into character data)
//! * comments and processing instructions (skipped)
//! * `<!DOCTYPE …>` declarations including bracketed internal subsets
//!   (skipped; DTDs are not interpreted)
//! * the five predefined entities and decimal/hex character references
//!
//! Not supported (not needed by any corpus in this reproduction):
//! namespaces-aware processing (prefixes are kept verbatim as part of the
//! tag name), external entities, and DTD validation.
//!
//! ## Quick example
//!
//! ```
//! let doc = ncq_xml::parse("<bib><article year='1999'>How to Hack</article></bib>").unwrap();
//! let root = doc.root();
//! assert_eq!(doc.tag_name(root), Some("bib"));
//! let article = doc.children(root)[0];
//! assert_eq!(doc.attribute(article, "year"), Some("1999"));
//! ```

pub mod cursor;
pub mod error;
pub mod escape;
pub mod parser;
pub mod symbols;
pub mod tree;
pub mod writer;

pub use error::{ParseError, ParseErrorKind};
pub use parser::{parse, parse_with_options, ParseOptions};
pub use symbols::{Symbol, SymbolTable};
pub use tree::{Attribute, Document, NodeId, NodeKind};
pub use writer::{write_document, WriteOptions};
