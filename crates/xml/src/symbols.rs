//! String interning for element and attribute names.
//!
//! XML documents repeat a small vocabulary of tag names millions of times;
//! interning turns every label comparison into a `u32` comparison and every
//! node label into four bytes. The Monet transform (in `ncq-store`) keys
//! whole relations by sequences of these symbols, so cheap equality matters
//! throughout the stack.

use std::collections::HashMap;
use std::fmt;

/// An interned string. Only meaningful together with the [`SymbolTable`]
/// that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// Raw index of the symbol inside its table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a symbol from a raw index. The caller must guarantee the
    /// index came from the same table's [`Symbol::index`].
    #[inline]
    pub fn from_index(index: usize) -> Symbol {
        Symbol(u32::try_from(index).expect("symbol table overflow"))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.0)
    }
}

/// An append-only string interner.
///
/// Lookup by string is hash based; lookup by symbol is a direct index.
#[derive(Debug, Default, Clone)]
pub struct SymbolTable {
    strings: Vec<Box<str>>,
    by_name: HashMap<Box<str>, Symbol>,
}

impl SymbolTable {
    /// Create an empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Intern `name`, returning the existing symbol when already present.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.by_name.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.strings.len()).expect("symbol table overflow"));
        let boxed: Box<str> = name.into();
        self.strings.push(boxed.clone());
        self.by_name.insert(boxed, sym);
        sym
    }

    /// Look up a symbol without interning.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if the symbol does not belong to this table.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate over `(Symbol, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Symbol(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_returns_same_symbol_for_same_string() {
        let mut t = SymbolTable::new();
        let a = t.intern("article");
        let b = t.intern("article");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn intern_distinguishes_different_strings() {
        let mut t = SymbolTable::new();
        let a = t.intern("article");
        let b = t.intern("author");
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = SymbolTable::new();
        let names = ["bibliography", "institute", "article", "year", "cdata"];
        let syms: Vec<Symbol> = names.iter().map(|n| t.intern(n)).collect();
        for (sym, name) in syms.iter().zip(names.iter()) {
            assert_eq!(t.resolve(*sym), *name);
        }
    }

    #[test]
    fn get_does_not_intern() {
        let mut t = SymbolTable::new();
        assert!(t.get("missing").is_none());
        let s = t.intern("present");
        assert_eq!(t.get("present"), Some(s));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn iter_yields_in_interning_order() {
        let mut t = SymbolTable::new();
        t.intern("a");
        t.intern("b");
        t.intern("c");
        let collected: Vec<&str> = t.iter().map(|(_, s)| s).collect();
        assert_eq!(collected, vec!["a", "b", "c"]);
    }

    #[test]
    fn from_index_round_trips() {
        let mut t = SymbolTable::new();
        let s = t.intern("x");
        assert_eq!(Symbol::from_index(s.index()), s);
    }

    #[test]
    fn empty_string_is_internable() {
        let mut t = SymbolTable::new();
        let s = t.intern("");
        assert_eq!(t.resolve(s), "");
    }
}
