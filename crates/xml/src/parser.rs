//! Recursive-descent XML parser producing a [`Document`].
//!
//! The parser is hand written against [`Cursor`] and supports the subset
//! documented in the crate root. It is strict about well-formedness
//! (matching tags, single root, attribute quoting, valid entities) because
//! the bulk loader in `ncq-store` assumes a well-formed tree.

use crate::cursor::Cursor;
use crate::error::{ParseError, ParseErrorKind, Position};
use crate::escape::decode_entity;
use crate::tree::{Document, NodeId};

/// Knobs for [`parse_with_options`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ParseOptions {
    /// Keep text nodes that consist solely of whitespace. Defaults to
    /// `false`: data-oriented XML (bibliographies, feature files) uses
    /// whitespace purely for indentation, and the paper's data model has no
    /// use for it.
    pub keep_whitespace_text: bool,
    /// Trim leading/trailing whitespace of retained text nodes. Defaults to
    /// `false` so that mixed content round-trips unchanged.
    pub trim_text: bool,
}

/// Parse with default [`ParseOptions`].
pub fn parse(src: &str) -> Result<Document, ParseError> {
    parse_with_options(src, ParseOptions::default())
}

/// Parse `src` into a [`Document`].
pub fn parse_with_options(src: &str, options: ParseOptions) -> Result<Document, ParseError> {
    Parser {
        cursor: Cursor::new(src.strip_prefix('\u{feff}').unwrap_or(src)),
        options,
    }
    .parse_document()
}

struct Parser<'a> {
    cursor: Cursor<'a>,
    options: ParseOptions,
}

impl<'a> Parser<'a> {
    fn err(&self, kind: ParseErrorKind) -> ParseError {
        ParseError {
            kind,
            position: self.cursor.position(),
        }
    }

    fn err_at(&self, kind: ParseErrorKind, position: Position) -> ParseError {
        ParseError { kind, position }
    }

    fn parse_document(mut self) -> Result<Document, ParseError> {
        self.skip_misc()?;
        if self.cursor.is_eof() {
            return Err(self.err(ParseErrorKind::NoRootElement));
        }
        if !self.cursor.starts_with("<") {
            return Err(self.err(ParseErrorKind::UnexpectedChar {
                found: self.cursor.rest().chars().next().unwrap_or('\0'),
                expected: "'<' starting the root element",
            }));
        }
        let doc = self.parse_root()?;
        self.skip_misc()?;
        if !self.cursor.is_eof() {
            return Err(self.err(ParseErrorKind::TrailingContent));
        }
        Ok(doc)
    }

    /// Skip whitespace, comments, processing instructions, the XML
    /// declaration and DOCTYPE — everything allowed around the root.
    fn skip_misc(&mut self) -> Result<(), ParseError> {
        loop {
            self.cursor.skip_whitespace();
            if self.cursor.starts_with("<?") {
                self.skip_pi()?;
            } else if self.cursor.starts_with("<!--") {
                self.skip_comment()?;
            } else if self.cursor.starts_with("<!DOCTYPE") {
                self.skip_doctype()?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_pi(&mut self) -> Result<(), ParseError> {
        debug_assert!(self.cursor.starts_with("<?"));
        self.cursor.eat("<?");
        if self.cursor.eat_until("?>").is_none() {
            return Err(self.err(ParseErrorKind::UnexpectedEof {
                while_parsing: "processing instruction",
            }));
        }
        self.cursor.eat("?>");
        Ok(())
    }

    fn skip_comment(&mut self) -> Result<(), ParseError> {
        debug_assert!(self.cursor.starts_with("<!--"));
        self.cursor.eat("<!--");
        if self.cursor.eat_until("-->").is_none() {
            return Err(self.err(ParseErrorKind::UnexpectedEof {
                while_parsing: "comment",
            }));
        }
        self.cursor.eat("-->");
        Ok(())
    }

    /// Skip `<!DOCTYPE … >` with an optional `[ … ]` internal subset.
    fn skip_doctype(&mut self) -> Result<(), ParseError> {
        self.cursor.eat("<!DOCTYPE");
        let mut bracket_depth = 0usize;
        loop {
            match self.cursor.bump() {
                None => {
                    return Err(self.err(ParseErrorKind::UnexpectedEof {
                        while_parsing: "DOCTYPE declaration",
                    }))
                }
                Some(b'[') => bracket_depth += 1,
                Some(b']') => bracket_depth = bracket_depth.saturating_sub(1),
                Some(b'>') if bracket_depth == 0 => return Ok(()),
                Some(_) => {}
            }
        }
    }

    fn parse_root(&mut self) -> Result<Document, ParseError> {
        // The root start tag gives the Document its root label.
        let open_pos = self.cursor.position();
        if !self.cursor.eat("<") {
            return Err(self.err(ParseErrorKind::NoRootElement));
        }
        let name = self.parse_name()?;
        let mut doc = Document::new(name);
        let root = doc.root();
        let name = name.to_owned();
        let self_closing = self.parse_attributes(&mut doc, root)?;
        if self_closing {
            return Ok(doc);
        }
        self.parse_content(&mut doc, root, &name, open_pos)?;
        Ok(doc)
    }

    /// Parse element content until the matching close tag of `open_name`.
    ///
    /// Implemented with an explicit stack so that arbitrarily deep
    /// documents (the multimedia corpus nests hundreds of levels) cannot
    /// overflow the call stack.
    fn parse_content(
        &mut self,
        doc: &mut Document,
        open_node: NodeId,
        open_name: &str,
        open_pos: Position,
    ) -> Result<(), ParseError> {
        // Stack of (node, name, position-of-open-tag).
        let mut stack: Vec<(NodeId, String, Position)> =
            vec![(open_node, open_name.to_owned(), open_pos)];
        let mut text = String::new();

        macro_rules! flush_text {
            ($parent:expr) => {
                if !text.is_empty() {
                    let keep = self.options.keep_whitespace_text
                        || !text.chars().all(|c| c.is_whitespace());
                    if keep {
                        let body = if self.options.trim_text {
                            text.trim().to_owned()
                        } else {
                            std::mem::take(&mut text)
                        };
                        if !body.is_empty() {
                            doc.add_text($parent, body);
                        }
                    }
                    text.clear();
                }
            };
        }

        while let Some((parent, parent_name, parent_pos)) = stack.last().cloned() {
            if self.cursor.is_eof() {
                return Err(self.err_at(
                    ParseErrorKind::UnexpectedEof {
                        while_parsing: "element content",
                    },
                    parent_pos,
                ));
            }
            if self.cursor.starts_with("</") {
                flush_text!(parent);
                self.cursor.eat("</");
                let name = self.parse_name()?;
                if name != parent_name {
                    return Err(self.err(ParseErrorKind::MismatchedClosingTag {
                        expected: parent_name,
                        found: name.to_owned(),
                    }));
                }
                self.cursor.skip_whitespace();
                if !self.cursor.eat(">") {
                    return Err(self.err(ParseErrorKind::UnexpectedChar {
                        found: self.cursor.rest().chars().next().unwrap_or('\0'),
                        expected: "'>' ending the closing tag",
                    }));
                }
                stack.pop();
            } else if self.cursor.starts_with("<!--") {
                flush_text!(parent);
                self.skip_comment()?;
            } else if self.cursor.starts_with("<![CDATA[") {
                self.cursor.eat("<![CDATA[");
                match self.cursor.eat_until("]]>") {
                    Some(body) => {
                        text.push_str(body);
                        self.cursor.eat("]]>");
                    }
                    None => {
                        return Err(self.err(ParseErrorKind::UnexpectedEof {
                            while_parsing: "CDATA section",
                        }))
                    }
                }
            } else if self.cursor.starts_with("<?") {
                flush_text!(parent);
                self.skip_pi()?;
            } else if self.cursor.starts_with("<") {
                flush_text!(parent);
                let child_pos = self.cursor.position();
                self.cursor.eat("<");
                let name = self.parse_name()?.to_owned();
                let child = doc.add_element(parent, &name);
                let self_closing = self.parse_attributes(doc, child)?;
                if !self_closing {
                    stack.push((child, name, child_pos));
                }
            } else {
                self.parse_text_run(&mut text)?;
            }
        }
        Ok(())
    }

    /// Accumulate character data up to the next `<`, decoding entities.
    fn parse_text_run(&mut self, out: &mut String) -> Result<(), ParseError> {
        loop {
            let chunk = self.cursor.eat_while(|b| b != b'<' && b != b'&');
            out.push_str(chunk);
            match self.cursor.peek() {
                Some(b'&') => {
                    let c = self.parse_entity()?;
                    out.push(c);
                }
                _ => return Ok(()),
            }
        }
    }

    fn parse_entity(&mut self) -> Result<char, ParseError> {
        let pos = self.cursor.position();
        self.cursor.eat("&");
        let body = self
            .cursor
            .eat_while(|b| b != b';' && b != b'<' && b != b'&');
        if !self.cursor.eat(";") {
            return Err(self.err_at(
                ParseErrorKind::InvalidEntity {
                    entity: body.to_owned(),
                },
                pos,
            ));
        }
        decode_entity(body).ok_or_else(|| {
            self.err_at(
                ParseErrorKind::InvalidEntity {
                    entity: body.to_owned(),
                },
                pos,
            )
        })
    }

    fn parse_name(&mut self) -> Result<&'a str, ParseError> {
        let name = self.cursor.eat_while(is_name_byte);
        if name.is_empty() || !is_name_start(name.as_bytes()[0]) {
            return Err(self.err(ParseErrorKind::InvalidName {
                found: name.chars().next(),
            }));
        }
        Ok(name)
    }

    /// Parse attributes and the tag terminator. Returns `true` when the
    /// element was self-closing (`/>`).
    fn parse_attributes(&mut self, doc: &mut Document, node: NodeId) -> Result<bool, ParseError> {
        loop {
            let skipped = self.cursor.skip_whitespace();
            match self.cursor.peek() {
                Some(b'>') => {
                    self.cursor.bump();
                    return Ok(false);
                }
                Some(b'/') => {
                    self.cursor.bump();
                    if !self.cursor.eat(">") {
                        return Err(self.err(ParseErrorKind::UnexpectedChar {
                            found: self.cursor.rest().chars().next().unwrap_or('\0'),
                            expected: "'>' after '/'",
                        }));
                    }
                    return Ok(true);
                }
                None => {
                    return Err(self.err(ParseErrorKind::UnexpectedEof {
                        while_parsing: "start tag",
                    }))
                }
                Some(_) => {
                    if skipped == 0 {
                        return Err(self.err(ParseErrorKind::UnexpectedChar {
                            found: self.cursor.rest().chars().next().unwrap_or('\0'),
                            expected: "whitespace before attribute",
                        }));
                    }
                    let name_pos = self.cursor.position();
                    let name = self.parse_name()?.to_owned();
                    if doc.attribute(node, &name).is_some() {
                        return Err(
                            self.err_at(ParseErrorKind::DuplicateAttribute { name }, name_pos)
                        );
                    }
                    self.cursor.skip_whitespace();
                    if !self.cursor.eat("=") {
                        return Err(self.err(ParseErrorKind::UnexpectedChar {
                            found: self.cursor.rest().chars().next().unwrap_or('\0'),
                            expected: "'=' after attribute name",
                        }));
                    }
                    self.cursor.skip_whitespace();
                    let value = self.parse_attribute_value()?;
                    doc.set_attribute(node, &name, value);
                }
            }
        }
    }

    fn parse_attribute_value(&mut self) -> Result<String, ParseError> {
        let quote = match self.cursor.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            other => {
                return Err(self.err(ParseErrorKind::UnexpectedChar {
                    found: other.map(|b| b as char).unwrap_or('\0'),
                    expected: "quoted attribute value",
                }))
            }
        };
        self.cursor.bump();
        let mut out = String::new();
        loop {
            let chunk = self
                .cursor
                .eat_while(|b| b != quote && b != b'&' && b != b'<');
            out.push_str(chunk);
            match self.cursor.peek() {
                Some(b) if b == quote => {
                    self.cursor.bump();
                    return Ok(out);
                }
                Some(b'&') => {
                    let c = self.parse_entity()?;
                    out.push(c);
                }
                Some(_) => {
                    return Err(self.err(ParseErrorKind::UnexpectedChar {
                        found: '<',
                        expected: "no '<' inside attribute value",
                    }))
                }
                None => {
                    return Err(self.err(ParseErrorKind::UnexpectedEof {
                        while_parsing: "attribute value",
                    }))
                }
            }
        }
    }
}

fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b':' | b'-' | b'.') || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::NodeKind;

    #[test]
    fn parses_minimal_document() {
        let d = parse("<a/>").unwrap();
        assert_eq!(d.tag_name(d.root()), Some("a"));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn parses_nested_elements_and_text() {
        let d = parse("<a><b>hello</b><c>world</c></a>").unwrap();
        let kids = d.children(d.root());
        assert_eq!(kids.len(), 2);
        assert_eq!(d.tag_name(kids[0]), Some("b"));
        assert_eq!(d.deep_text(d.root()), "helloworld");
    }

    #[test]
    fn parses_attributes_with_both_quote_styles() {
        let d = parse(r#"<a x="1" y='two'/>"#).unwrap();
        assert_eq!(d.attribute(d.root(), "x"), Some("1"));
        assert_eq!(d.attribute(d.root(), "y"), Some("two"));
    }

    #[test]
    fn decodes_entities_in_text_and_attributes() {
        let d = parse(r#"<a t="&lt;&amp;&gt;&#65;">x &amp; y&#x21;</a>"#).unwrap();
        assert_eq!(d.attribute(d.root(), "t"), Some("<&>A"));
        assert_eq!(d.deep_text(d.root()), "x & y!");
    }

    #[test]
    fn cdata_sections_become_text() {
        let d = parse("<a><![CDATA[<raw> & stuff]]></a>").unwrap();
        assert_eq!(d.deep_text(d.root()), "<raw> & stuff");
    }

    #[test]
    fn cdata_merges_with_adjacent_text() {
        let d = parse("<a>pre<![CDATA[mid]]>post</a>").unwrap();
        // One single text node.
        assert_eq!(d.children(d.root()).len(), 1);
        assert_eq!(d.deep_text(d.root()), "premidpost");
    }

    #[test]
    fn whitespace_only_text_is_dropped_by_default() {
        let d = parse("<a>\n  <b/>\n  <c/>\n</a>").unwrap();
        assert_eq!(d.children(d.root()).len(), 2);
    }

    #[test]
    fn whitespace_can_be_kept() {
        let d = parse_with_options(
            "<a> <b/> </a>",
            ParseOptions {
                keep_whitespace_text: true,
                trim_text: false,
            },
        )
        .unwrap();
        assert_eq!(d.children(d.root()).len(), 3);
    }

    #[test]
    fn trim_text_trims() {
        let d = parse_with_options(
            "<a>  padded  </a>",
            ParseOptions {
                keep_whitespace_text: false,
                trim_text: true,
            },
        )
        .unwrap();
        assert_eq!(d.deep_text(d.root()), "padded");
    }

    #[test]
    fn prolog_comments_pis_doctype_are_skipped() {
        let src = r#"<?xml version="1.0" encoding="UTF-8"?>
<!-- a comment -->
<!DOCTYPE bib [ <!ELEMENT bib (article*)> ]>
<?target data?>
<bib/>"#;
        let d = parse(src).unwrap();
        assert_eq!(d.tag_name(d.root()), Some("bib"));
    }

    #[test]
    fn comments_inside_content_are_skipped() {
        let d = parse("<a>x<!-- ignore <b> -->y</a>").unwrap();
        // The comment splits the text into two nodes.
        assert_eq!(d.children(d.root()).len(), 2);
        assert_eq!(d.deep_text(d.root()), "xy");
    }

    #[test]
    fn mismatched_tag_is_an_error() {
        let e = parse("<a><b></a></b>").unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::MismatchedClosingTag { .. }
        ));
    }

    #[test]
    fn unclosed_element_is_an_error() {
        let e = parse("<a><b>").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::UnexpectedEof { .. }));
    }

    #[test]
    fn trailing_content_is_an_error() {
        let e = parse("<a/><b/>").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::TrailingContent));
    }

    #[test]
    fn duplicate_attribute_is_an_error() {
        let e = parse(r#"<a x="1" x="2"/>"#).unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::DuplicateAttribute { .. }));
    }

    #[test]
    fn bad_entity_is_an_error() {
        let e = parse("<a>&bogus;</a>").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::InvalidEntity { .. }));
        let e = parse("<a>&unterminated</a>").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::InvalidEntity { .. }));
    }

    #[test]
    fn empty_input_has_no_root() {
        let e = parse("   ").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::NoRootElement));
    }

    #[test]
    fn error_positions_point_at_problem() {
        let e = parse("<a>\n<b></c></b></a>").unwrap_err();
        assert_eq!(e.position.line, 2);
    }

    #[test]
    fn utf8_names_and_text_survive() {
        let d = parse("<café läge=\"süß\">héllo wörld</café>").unwrap();
        assert_eq!(d.tag_name(d.root()), Some("café"));
        assert_eq!(d.attribute(d.root(), "läge"), Some("süß"));
        assert_eq!(d.deep_text(d.root()), "héllo wörld");
    }

    #[test]
    fn bom_is_stripped() {
        let d = parse("\u{feff}<a/>").unwrap();
        assert_eq!(d.tag_name(d.root()), Some("a"));
    }

    #[test]
    fn deep_nesting_does_not_overflow_stack() {
        let depth = 50_000;
        let mut src = String::new();
        for _ in 0..depth {
            src.push_str("<d>");
        }
        src.push_str("leaf");
        for _ in 0..depth {
            src.push_str("</d>");
        }
        let d = parse(&src).unwrap();
        assert_eq!(d.len(), depth + 1);
    }

    #[test]
    fn figure1_document_parses() {
        let src = r#"
<bibliography>
  <institute>
    <article key="BB99">
      <author><firstname>Ben</firstname><lastname>Bit</lastname></author>
      <title>How to Hack</title>
      <year>1999</year>
    </article>
    <article key="BK99">
      <author>Bob Byte</author>
      <title>Hacking &amp; RSI</title>
      <year>1999</year>
    </article>
  </institute>
</bibliography>"#;
        let d = parse(src).unwrap();
        let arts: Vec<NodeId> = d
            .iter_depth_first()
            .filter(|&n| d.tag_name(n) == Some("article"))
            .collect();
        assert_eq!(arts.len(), 2);
        assert_eq!(d.attribute(arts[0], "key"), Some("BB99"));
        assert_eq!(d.attribute(arts[1], "key"), Some("BK99"));
        let title2 = d.children(arts[1])[1];
        assert_eq!(d.deep_text(title2), "Hacking & RSI");
    }

    #[test]
    fn text_kind_matches() {
        let d = parse("<a>t</a>").unwrap();
        let t = d.children(d.root())[0];
        assert!(matches!(d.kind(t), NodeKind::Text(s) if s == "t"));
        assert_eq!(d.text(t), Some("t"));
        assert_eq!(d.tag_name(t), None);
    }
}
