//! Entity escaping and decoding for text and attribute values.

/// Decode a single entity body (the part between `&` and `;`).
///
/// Supports the five predefined entities plus decimal (`#NN`) and
/// hexadecimal (`#xNN`) character references. Returns `None` when the
/// entity is unknown or the code point is invalid.
pub fn decode_entity(entity: &str) -> Option<char> {
    match entity {
        "amp" => Some('&'),
        "lt" => Some('<'),
        "gt" => Some('>'),
        "quot" => Some('"'),
        "apos" => Some('\''),
        _ => {
            let rest = entity.strip_prefix('#')?;
            let code = if let Some(hex) = rest.strip_prefix('x').or_else(|| rest.strip_prefix('X'))
            {
                u32::from_str_radix(hex, 16).ok()?
            } else {
                rest.parse::<u32>().ok()?
            };
            char::from_u32(code)
        }
    }
}

/// Escape character data for element content (`&`, `<`, `>`).
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value for double-quoted serialization.
pub fn escape_attribute(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\n' => out.push_str("&#10;"),
            '\t' => out.push_str("&#9;"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predefined_entities_decode() {
        assert_eq!(decode_entity("amp"), Some('&'));
        assert_eq!(decode_entity("lt"), Some('<'));
        assert_eq!(decode_entity("gt"), Some('>'));
        assert_eq!(decode_entity("quot"), Some('"'));
        assert_eq!(decode_entity("apos"), Some('\''));
    }

    #[test]
    fn numeric_entities_decode() {
        assert_eq!(decode_entity("#65"), Some('A'));
        assert_eq!(decode_entity("#x41"), Some('A'));
        assert_eq!(decode_entity("#X41"), Some('A'));
        assert_eq!(decode_entity("#x1F600"), Some('😀'));
    }

    #[test]
    fn bad_entities_are_rejected() {
        assert_eq!(decode_entity("bogus"), None);
        assert_eq!(decode_entity(""), None);
        assert_eq!(decode_entity("#"), None);
        assert_eq!(decode_entity("#xZZ"), None);
        // Surrogate code point: not a valid char.
        assert_eq!(decode_entity("#xD800"), None);
        assert_eq!(decode_entity("#x110000"), None);
    }

    #[test]
    fn text_escaping_round_trips_specials() {
        assert_eq!(escape_text("a & b < c > d"), "a &amp; b &lt; c &gt; d");
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn attribute_escaping_handles_quotes_and_whitespace() {
        assert_eq!(
            escape_attribute("say \"hi\"\t& go\n"),
            "say &quot;hi&quot;&#9;&amp; go&#10;"
        );
    }
}
