//! Differential equivalence harness for the bounded, batched hot path.
//!
//! The batch executor ([`nearest_concept::core::batch`]) and the top-k
//! early exit (`MeetOptions::limit`) are *optimizations*: both promise
//! byte-identical answers to the plain serial, unbounded evaluation.
//! This suite proves the promise differentially on random trees —
//! random query batches through `Database` and `ShardedDb` at K ∈
//! {1, 4}, every strategy, with and without distance bounds and limits:
//!
//! * batched answers (`meet_hit_groups_batch`) equal one-at-a-time
//!   answers (`meet_hit_groups`), meet for meet, witness for witness;
//! * `limit k` answers equal the unbounded ranking's first `k` answers
//!   at k ∈ {1, 2, 5} and at k far beyond the result size;
//! * every engine agrees with every other engine on the same query.
//!
//! Seeded loops over the vendored deterministic PRNG stand in for
//! proptest (the offline build cannot fetch it); failures print the
//! seed.

use ncq_fulltext::HitSet;
use nearest_concept::core::{BatchQuery, MeetBackend, MeetOptions, MeetStrategy};
use nearest_concept::xml::Document;
use nearest_concept::{Database, ShardedDb};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random tree with text leaves (the snapshot suite's generator): node
/// `i + 1` hangs under a random earlier node; some nodes carry cdata
/// from a small token pool so hit sets overlap between queries.
fn random_tree(rng: &mut StdRng) -> Document {
    const TAGS: [&str; 5] = ["a", "b", "c", "d", "e"];
    const WORDS: [&str; 6] = ["alpha", "beta", "gamma", "delta", "twin peaks", "omega"];
    let mut doc = Document::new("root");
    let mut nodes = vec![doc.root()];
    let n = rng.random_range(1usize..150);
    for i in 0..n {
        let parent = nodes[rng.random_range(0..nodes.len())];
        let node = doc.add_element(parent, TAGS[i % TAGS.len()]);
        if rng.random_range(0..3usize) == 0 {
            let w1 = WORDS[rng.random_range(0..WORDS.len())];
            let w2 = WORDS[rng.random_range(0..WORDS.len())];
            doc.add_text(node, format!("{w1} {w2}"));
        }
        nodes.push(node);
    }
    doc
}

/// Terms the generator's token pool can answer — including a phrase and
/// a word that only occurs inside the phrase, so hit sets of different
/// shapes (and empty ones, on small trees) all show up.
const TERMS: [&str; 7] = [
    "alpha",
    "beta",
    "gamma",
    "delta",
    "omega",
    "peaks",
    "twin peaks",
];

const STRATEGIES: [MeetStrategy; 3] = [MeetStrategy::Auto, MeetStrategy::Lift, MeetStrategy::Sweep];

/// A random per-query option set: strategy, sometimes a distance bound,
/// sometimes a top-k limit.
fn random_options(rng: &mut StdRng) -> MeetOptions {
    MeetOptions {
        strategy: STRATEGIES[rng.random_range(0..STRATEGIES.len())],
        max_distance: if rng.random_range(0..4usize) == 0 {
            Some(rng.random_range(0usize..12))
        } else {
            None
        },
        limit: if rng.random_range(0..3usize) == 0 {
            Some(rng.random_range(1usize..6))
        } else {
            None
        },
        ..MeetOptions::default()
    }
}

/// Batched evaluation is byte-identical to one-at-a-time evaluation —
/// through the plain `Database` (which overrides the batch hook with
/// the shared-evaluation executor) and through `ShardedDb` at K ∈
/// {1, 4} (which inherits the serial default), duplicates, bounds and
/// limits included. All engines also agree with each other.
#[test]
fn random_batches_match_serial_evaluation_everywhere() {
    for seed in 0u64..40 {
        let mut rng = StdRng::seed_from_u64(0xba7c_0000 + seed);
        let doc = random_tree(&mut rng);
        let db = Database::from_document(&doc);
        let hits: Vec<HitSet> = TERMS.iter().map(|t| db.search(t)).collect();

        // A random batch: 2–8 queries over 2–3 term groups each, drawn
        // from the shared pool so hit sets recur across the batch
        // (exercising the run cache and the duplicate-query dedup).
        let n_queries = rng.random_range(2usize..9);
        let queries: Vec<BatchQuery<'_>> = (0..n_queries)
            .map(|_| {
                let n_groups = rng.random_range(2usize..4);
                let inputs: Vec<&HitSet> = (0..n_groups)
                    .map(|_| &hits[rng.random_range(0..hits.len())])
                    .collect();
                BatchQuery::new(inputs, random_options(&mut rng))
            })
            .collect();

        let engines: Vec<(String, Box<dyn MeetBackend>)> = vec![
            ("Database".into(), Box::new(db.clone())),
            (
                "ShardedDb K=1".into(),
                Box::new(ShardedDb::new(db.clone(), 1)),
            ),
            (
                "ShardedDb K=4".into(),
                Box::new(ShardedDb::new(db.clone(), 4)),
            ),
        ];

        let mut reference: Option<Vec<Vec<nearest_concept::core::Meet>>> = None;
        for (name, engine) in &engines {
            let serial: Vec<_> = queries
                .iter()
                .map(|q| engine.meet_hit_groups(&q.inputs, &q.options))
                .collect();
            let batched = engine.meet_hit_groups_batch(&queries);
            assert_eq!(batched, serial, "seed {seed}: batched != serial on {name}");
            let fallible = engine
                .try_meet_hit_groups_batch(&queries)
                .expect("local engines are infallible");
            assert_eq!(
                fallible, serial,
                "seed {seed}: try-batch != serial on {name}"
            );
            match &reference {
                None => reference = Some(serial),
                Some(r) => assert_eq!(&serial, r, "seed {seed}: {name} diverged cross-engine"),
            }
        }
    }
}

/// `limit k` is the unbounded ranking's prefix: for every strategy and
/// engine, the bounded answer equals `unbounded[..k]` at small k, and
/// equals the full answer when k exceeds the result size. The early
/// exits (roll-up climb floor, sweep depth floor, per-shard local
/// top-k) may skip work but must never change a returned byte.
#[test]
fn limit_k_equals_the_unbounded_prefix() {
    for seed in 0u64..40 {
        let mut rng = StdRng::seed_from_u64(0x70bb_0000 + seed);
        let doc = random_tree(&mut rng);
        let db = Database::from_document(&doc);
        let hits: Vec<HitSet> = TERMS.iter().map(|t| db.search(t)).collect();
        let n_groups = rng.random_range(2usize..4);
        let inputs: Vec<&HitSet> = (0..n_groups)
            .map(|_| &hits[rng.random_range(0..hits.len())])
            .collect();

        let engines: Vec<(String, Box<dyn MeetBackend>)> = vec![
            ("Database".into(), Box::new(db.clone())),
            (
                "ShardedDb K=1".into(),
                Box::new(ShardedDb::new(db.clone(), 1)),
            ),
            (
                "ShardedDb K=4".into(),
                Box::new(ShardedDb::new(db.clone(), 4)),
            ),
        ];
        for (name, engine) in &engines {
            for strategy in STRATEGIES {
                let unbounded = engine.meet_hit_groups(
                    &inputs,
                    &MeetOptions {
                        strategy,
                        ..MeetOptions::default()
                    },
                );
                for k in [1usize, 2, 5, unbounded.len() + 100] {
                    let bounded = engine.meet_hit_groups(
                        &inputs,
                        &MeetOptions {
                            strategy,
                            limit: Some(k),
                            ..MeetOptions::default()
                        },
                    );
                    let want = &unbounded[..k.min(unbounded.len())];
                    assert_eq!(
                        bounded, want,
                        "seed {seed}: limit {k} != unbounded prefix on {name} ({strategy:?})"
                    );
                }
            }
        }
    }
}

/// The same prefix property through the full term pipeline (the
/// ranked `AnswerSet` facade the server and the dialect's `limit k`
/// clause sit on): distances, tags, witness samples and serialized
/// answer XML all come from the unbounded prefix.
#[test]
fn limited_term_queries_answer_the_ranked_prefix() {
    for seed in 0u64..15 {
        let mut rng = StdRng::seed_from_u64(0x9f1d_0000 + seed);
        let doc = random_tree(&mut rng);
        let db = Database::from_document(&doc);
        let terms = ["alpha", "beta", "twin peaks"];
        let full = db.meet_terms(&terms).expect("unbounded");
        for k in [1usize, 2, 5] {
            let options = MeetOptions {
                limit: Some(k),
                ..MeetOptions::default()
            };
            let bounded = db.meet_terms_with(&terms, &options).expect("bounded");
            let cut = k.min(full.results.len());
            assert_eq!(bounded.results, full.results[..cut], "seed {seed}: k = {k}");
        }
    }
}
