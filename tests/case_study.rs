//! The DBLP case study end to end (paper §5 / Figure 7), on the synthetic
//! corpus.

use nearest_concept::core::{MeetOptions, PathFilter};
use nearest_concept::datagen::{DblpConfig, DblpCorpus};
use nearest_concept::fulltext::HitSet;
use nearest_concept::Database;

fn setup() -> (Database, DblpCorpus) {
    let corpus = DblpCorpus::generate(&DblpConfig {
        papers_per_edition: 10,
        journal_articles_per_year: 4,
        ..DblpConfig::default()
    });
    (Database::from_document(&corpus.document), corpus)
}

fn case_study(db: &Database, year_from: u16, year_to: u16) -> Vec<nearest_concept::core::Meet> {
    let icde = db.search_word("ICDE");
    let mut years = HitSet::new();
    for y in year_from..=year_to {
        years.union(&db.search_word(&y.to_string()));
    }
    let options = MeetOptions {
        filter: PathFilter::exclude_root(db.store()),
        ..MeetOptions::default()
    };
    db.meet_hits(&[icde, years], &options)
}

#[test]
fn single_year_returns_that_years_icde_publications() {
    let (db, corpus) = setup();
    let meets = case_study(&db, 1999, 1999);
    let expected: usize = corpus
        .editions
        .iter()
        .filter(|(c, y, _)| c == "ICDE" && *y == 1999)
        .map(|(_, _, n)| n + 1) // papers + the proceedings record
        .sum();
    assert_eq!(meets.len(), expected);
    // Every answer really is an ICDE record of 1999.
    let store = db.store();
    for m in &meets {
        let tag = store.label(m.node);
        assert!(
            tag == "inproceedings" || tag == "proceedings",
            "unexpected result type {tag}"
        );
        let text = nearest_concept::store::ObjectView::deep_text(store, m.node);
        assert!(text.contains("1999"), "answer must be a 1999 record");
        assert!(text.contains("ICDE") || text.contains("Proceedings of the ICDE"));
    }
}

#[test]
fn year_without_icde_returns_nothing() {
    let (db, _) = setup();
    // No ICDE in 1985 → no ICDE publication meets for that single year.
    let meets = case_study(&db, 1985, 1985);
    assert!(meets.is_empty(), "got {} unexpected meets", meets.len());
}

#[test]
fn full_interval_matches_paper_structure() {
    let (db, corpus) = setup();
    let meets = case_study(&db, 1984, 1999);
    let icde_records: usize = corpus
        .editions
        .iter()
        .filter(|(c, _, _)| c == "ICDE")
        .map(|(_, _, n)| n + 1)
        .sum();
    // All ICDE records of the interval + exactly the two planted false
    // positives ("just two false positives", paper §5).
    assert_eq!(meets.len(), icde_records + 2);
    let store = db.store();
    let fp: Vec<String> = meets
        .iter()
        .map(|m| store.label(m.node))
        .filter(|t| t == "article")
        .collect();
    assert_eq!(fp.len(), 2);
}

#[test]
fn cardinality_grows_monotonically_with_the_interval() {
    let (db, _) = setup();
    let mut last = 0usize;
    for year_from in (1984u16..=1999).rev() {
        let n = case_study(&db, year_from, 1999).len();
        assert!(n >= last, "shrank at {year_from}");
        last = n;
    }
}

#[test]
fn meets_identify_records_not_fields() {
    let (db, _) = setup();
    let meets = case_study(&db, 1999, 1999);
    let store = db.store();
    for m in &meets {
        // Record elements are direct children of the dblp root.
        assert_eq!(store.parent(m.node), Some(store.root()));
        // Their witnesses are the booktitle/title hit and the year hit.
        assert!(m.witness_count >= 2);
    }
}
