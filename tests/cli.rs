//! Smoke tests for the `ncq` command-line tool (spawned as a real
//! process via the Cargo-provided binary path).

use std::io::Write as _;
use std::process::{Command, Stdio};

fn figure1_file() -> tempfileish::TempXml {
    tempfileish::TempXml::new(nearest_concept::datagen::FIGURE1_XML)
}

/// Minimal self-cleaning temp file helper (no external crates).
mod tempfileish {
    use std::path::PathBuf;

    pub struct TempXml {
        pub path: PathBuf,
    }

    impl TempXml {
        pub fn new(content: &str) -> TempXml {
            let mut path = std::env::temp_dir();
            path.push(format!(
                "ncq-test-{}-{}.xml",
                std::process::id(),
                std::time::SystemTime::now()
                    .duration_since(std::time::UNIX_EPOCH)
                    .unwrap()
                    .as_nanos()
            ));
            std::fs::write(&path, content).expect("write temp xml");
            TempXml { path }
        }
    }

    impl Drop for TempXml {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[test]
fn terms_mode_prints_the_answer() {
    let f = figure1_file();
    let out = Command::new(env!("CARGO_BIN_EXE_ncq"))
        .arg(&f.path)
        .args(["--terms", "Bit,1999"])
        .output()
        .expect("run ncq");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("<result> article </result>"), "{stdout}");
}

#[test]
fn query_mode_runs_sql() {
    let f = figure1_file();
    let out = Command::new(env!("CARGO_BIN_EXE_ncq"))
        .arg(&f.path)
        .args([
            "--query",
            "select meet(a,b) from bibliography/% a, bibliography/% b \
             where a contains 'Ben' and b contains 'Bit'",
        ])
        .output()
        .expect("run ncq");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("<result> author </result>"), "{stdout}");
}

#[test]
fn stats_mode_prints_counters() {
    let f = figure1_file();
    let out = Command::new(env!("CARGO_BIN_EXE_ncq"))
        .arg(&f.path)
        .arg("--stats")
        .output()
        .expect("run ncq");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("objects:"));
    assert!(stdout.contains("string associations:"));
}

#[test]
fn within_flag_bounds_the_meet() {
    let f = figure1_file();
    let out = Command::new(env!("CARGO_BIN_EXE_ncq"))
        .arg(&f.path)
        .args(["--terms", "Bit,1999", "--within", "4"])
        .output()
        .expect("run ncq");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("article"), "{stdout}");
}

#[test]
fn interactive_loop_processes_stdin() {
    let f = figure1_file();
    let mut child = Command::new(env!("CARGO_BIN_EXE_ncq"))
        .arg(&f.path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn ncq");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"? Bob Byte\nquit\n")
        .unwrap();
    let out = child.wait_with_output().expect("wait");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("<result> cdata </result>"), "{stdout}");
}

#[test]
fn missing_file_fails_with_nonzero_exit() {
    let out = Command::new(env!("CARGO_BIN_EXE_ncq"))
        .arg("/nonexistent/file.xml")
        .output()
        .expect("run ncq");
    assert!(!out.status.success());
}

#[test]
fn malformed_xml_fails_with_parse_error() {
    let f = tempfileish::TempXml::new("<broken>");
    let out = Command::new(env!("CARGO_BIN_EXE_ncq"))
        .arg(&f.path)
        .arg("--stats")
        .output()
        .expect("run ncq");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("parse error"), "{stderr}");
}
