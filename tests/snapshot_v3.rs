//! v3-era snapshot integration suite, complementing
//! `tests/snapshot_roundtrip.rs` (which pins the *current* layout):
//!
//! * cross-version matrix — the committed v1/v2 fixtures keep loading
//!   through the same entry points as v3 files and answer
//!   byte-identically, and re-saving a legacy-loaded engine reproduces
//!   the committed v3 fixture exactly (deterministic upgrade path);
//! * length-lies in the v3 section table — entries whose extents are
//!   forged *with a recomputed table checksum* so only per-extent
//!   validation can catch them — surface as typed errors end-to-end;
//! * a two-process check that one snapshot file on disk serves two
//!   independent `Database` opens (one per process) with equal answers,
//!   which is the zero-copy story: the kernel page cache, not a private
//!   heap, is the shared substrate.

use nearest_concept::store::snapshot::checksum64;
use nearest_concept::store::{section_name, SnapshotError};
use nearest_concept::{Database, ShardedDb};
use std::path::PathBuf;
use std::process::Command;

fn golden(name: &str) -> Vec<u8> {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(name);
    std::fs::read(&path).unwrap_or_else(|e| panic!("cannot read fixture {path:?}: {e}"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ncq-snapshot-v3");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

/// The probe answer every fixture must agree on (the Figure 1 corpus).
fn probe(db: &Database) -> String {
    db.meet_terms(&["Bit", "1999"])
        .expect("probe meet")
        .to_detailed_xml()
}

/// Cross-version matrix: v1, v2 and v3 fixtures of the same corpus all
/// load through `Database::from_snapshot_bytes` / `ShardedDb` and
/// answer byte-identically — the version dispatcher keeps old files
/// first-class. Re-encoding a *legacy*-loaded engine under the current
/// layout reproduces the committed v3 fixture byte-for-byte, so
/// upgrading a snapshot is deterministic regardless of which version it
/// started from.
#[test]
fn legacy_fixtures_load_byte_identically_through_the_same_entry_points() {
    let v3 = golden("snapshot_v3.bin");
    let reference = probe(&Database::from_snapshot_bytes(v3.clone()).expect("v3 decodes"));

    for fixture in ["snapshot_v1.bin", "snapshot_v2.bin"] {
        let bytes = golden(fixture);
        let db = Database::from_snapshot_bytes(bytes.clone())
            .unwrap_or_else(|e| panic!("{fixture} no longer decodes: {e}"));
        assert_eq!(probe(&db), reference, "{fixture}: Database answers drifted");

        // The sharded open reuses the persisted K = 4 cut from the
        // legacy partition section.
        let sharded = ShardedDb::from_snapshot_bytes(bytes, 4)
            .unwrap_or_else(|e| panic!("{fixture} no longer decodes sharded: {e}"));
        assert_eq!(sharded.partition().requested_k(), 4);
        assert_eq!(
            sharded
                .meet_terms(&["Bit", "1999"])
                .unwrap()
                .to_detailed_xml(),
            reference,
            "{fixture}: ShardedDb answers drifted"
        );

        // Deterministic upgrade: legacy file in, current-layout bytes
        // out, and those bytes are exactly the committed v3 fixture.
        let mut writer = sharded.database().encode_snapshot_v3();
        sharded.partition().encode_snapshot_v3(&mut writer);
        assert_eq!(
            writer.to_bytes(),
            v3,
            "{fixture}: re-encoding under the current layout drifted from snapshot_v3.bin"
        );
    }
}

/// Length-lies: forge a section-table entry (shrunken extent, overrun
/// extent, offset pointed at a different section's bytes) and *repair
/// the table checksum* so the header passes. Only per-extent
/// validation — bounds against the file, checksum over the padded
/// extent — stands between the lie and a wild read; every lie must be
/// a typed error naming the section, never a panic or a wrong answer.
#[test]
fn table_length_lies_are_typed_errors_end_to_end() {
    let db = Database::from_xml_str(nearest_concept::datagen::FIGURE1_XML).unwrap();
    let sharded = ShardedDb::new(db, 4);
    let path = scratch("length-lies.ncq");
    sharded.save_snapshot(&path).expect("save");
    let bytes = std::fs::read(&path).expect("read");

    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let table_end = 24 + 32 * count;
    assert!(count >= 2, "need two sections to swap extents");
    let entry = |i: usize| {
        let at = 24 + 32 * i;
        let id = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let offset = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap());
        let len = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().unwrap());
        (id, offset, len)
    };

    // Each lie rewrites entry fields, then recomputes the table
    // checksum so the forgery is internally consistent.
    let forge = |edit: &dyn Fn(&mut [u8])| {
        let mut forged = bytes.clone();
        edit(&mut forged);
        let sum = checksum64(&forged[24..table_end]);
        forged[16..24].copy_from_slice(&sum.to_le_bytes());
        forged
    };
    let open = |data: &[u8], name: &str| {
        std::fs::write(&path, data).expect("stage forged file");
        let err = Database::open_snapshot(&path)
            .err()
            .unwrap_or_else(|| panic!("{name}: forged snapshot opened cleanly"));
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. }
                    | SnapshotError::ChecksumMismatch { .. }
                    | SnapshotError::Corrupt { .. }
            ),
            "{name}: expected a typed corruption error, got {err}"
        );
        err
    };

    // Overrun: the first section claims to extend past end-of-file.
    let (id0, _, _) = entry(0);
    let overrun = forge(&|f: &mut [u8]| {
        f[24 + 16..24 + 24].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
    });
    let err = open(&overrun, "overrun");
    if let SnapshotError::Truncated { context, .. } = err {
        assert_eq!(
            context,
            section_name(id0),
            "overrun error names the lied section"
        );
    }

    // Shrink: the extent is cut short, so the checksum over the padded
    // extent no longer matches what the writer recorded.
    let shrink = forge(&|f: &mut [u8]| {
        let len = u64::from_le_bytes(f[24 + 16..24 + 24].try_into().unwrap());
        f[24 + 16..24 + 24].copy_from_slice(&(len / 2).to_le_bytes());
    });
    open(&shrink, "shrink");

    // Swap: entry 0's extent redirected at entry 1's bytes — in-bounds,
    // plausible, and only the per-section checksum can tell.
    let (_, off1, len1) = entry(1);
    let swap = forge(&|f: &mut [u8]| {
        f[24 + 8..24 + 16].copy_from_slice(&off1.to_le_bytes());
        f[24 + 16..24 + 24].copy_from_slice(&len1.to_le_bytes());
    });
    open(&swap, "swap");

    std::fs::remove_file(&path).ok();
}

/// One file, two processes: the parent saves a snapshot, opens it, and
/// re-invokes this same test binary as a child that opens the *same
/// path* while the parent's map is still live. Both processes answer
/// the probe identically — the on-disk image is a complete, immutable
/// serving substrate, shareable through the page cache with no
/// per-process rebuild.
#[test]
fn one_snapshot_file_serves_two_processes_with_equal_answers() {
    // Child branch: open the file named by the env var, write the probe
    // answer where the parent asked, and exit.
    if let Ok(snap) = std::env::var("NCQ_V3_TWO_PROC_SNAPSHOT") {
        let out = std::env::var("NCQ_V3_TWO_PROC_OUT").expect("child out path");
        let db = Database::open_snapshot(&snap).expect("child open");
        std::fs::write(&out, probe(&db)).expect("child write");
        return;
    }

    let db = Database::from_xml_str(nearest_concept::datagen::FIGURE1_XML).unwrap();
    let path = scratch("two-proc.ncq");
    db.save_snapshot(&path).expect("save");

    // Parent's map stays open across the child's whole lifetime.
    let parent = Database::open_snapshot(&path).expect("parent open");
    let expected = probe(&parent);

    // A second open in the *same* process is also independent: two maps
    // of one file, equal answers.
    let again = Database::open_snapshot(&path).expect("second open");
    assert_eq!(probe(&again), expected, "second in-process open diverged");

    let out = scratch("two-proc-answer.txt");
    std::fs::remove_file(&out).ok();
    let status = Command::new(std::env::current_exe().expect("test binary path"))
        .args([
            "one_snapshot_file_serves_two_processes_with_equal_answers",
            "--exact",
            "--nocapture",
        ])
        .env("NCQ_V3_TWO_PROC_SNAPSHOT", &path)
        .env("NCQ_V3_TWO_PROC_OUT", &out)
        .status()
        .expect("spawn child process");
    assert!(status.success(), "child process failed");
    let child_answer = std::fs::read_to_string(&out).expect("child answer");
    assert_eq!(child_answer, expected, "child process answers diverged");

    // The parent's map was live the whole time — re-probe to show the
    // concurrent child open did not disturb it.
    assert_eq!(
        probe(&parent),
        expected,
        "parent answers drifted after child ran"
    );

    for p in [&path, &out] {
        std::fs::remove_file(p).ok();
    }
}
