//! The forest acceptance suite: a 3-corpus catalog (dblp, multimedia,
//! deep) serves MEET/SQL/SEARCH byte-identically to per-corpus
//! `Database` runs, keeps a stable cross-corpus document order on
//! fan-out, and cold-starts end to end from a manifest file — with
//! corruption (dangling paths, checksum drift) failing typed.

use nearest_concept::core::{Catalog, CatalogError, ForestBackend, MeetBackend, MeetOptions};
use nearest_concept::shard::{open_forest, sharded_corpus};
use nearest_concept::store::manifest::{Manifest, ManifestEntry};
use nearest_concept::{run_query, Database, QueryOutput};
use std::path::PathBuf;
use std::sync::Arc;

/// The deep fork forest of the PR 4 bench: `pairs` heads, two
/// depth-`depth` chains each, text leaves `s` / `t`.
fn deep_xml(depth: usize, pairs: usize) -> String {
    let mut xml = String::from("<root>");
    for _ in 0..pairs {
        xml.push_str("<h>");
        for _ in 0..depth {
            xml.push_str("<x>");
        }
        xml.push_str("<a>s</a>");
        for _ in 0..depth {
            xml.push_str("</x>");
        }
        for _ in 0..depth {
            xml.push_str("<y>");
        }
        xml.push_str("<b>t</b>");
        for _ in 0..depth {
            xml.push_str("</y>");
        }
        xml.push_str("</h>");
    }
    xml.push_str("</root>");
    xml
}

fn dblp() -> Database {
    let corpus =
        nearest_concept::datagen::DblpCorpus::generate(&nearest_concept::datagen::DblpConfig {
            papers_per_edition: 6,
            journal_articles_per_year: 2,
            ..nearest_concept::datagen::DblpConfig::default()
        });
    Database::from_document(&corpus.document)
}

fn multimedia() -> Database {
    let corpus = nearest_concept::datagen::MultimediaCorpus::generate(
        &nearest_concept::datagen::MultimediaConfig {
            noise_items: 40,
            ..nearest_concept::datagen::MultimediaConfig::default()
        },
    );
    Database::from_document(&corpus.document)
}

fn deep() -> Database {
    Database::from_xml_str(&deep_xml(24, 30)).unwrap()
}

/// Per-corpus probe queries: (corpus, meet terms, a SQL query, a
/// search term). Chosen so every corpus exercises meets, the dialect
/// and plain search against its own vocabulary.
fn probes() -> Vec<(&'static str, [&'static str; 2], String, &'static str)> {
    let root = |db: &Database| db.store().label(db.store().root());
    let dblp_root = root(&dblp());
    let mm_root = root(&multimedia());
    vec![
        (
            "dblp",
            ["1999", "1995"],
            format!(
                "select meet(a, b) from {dblp_root}/% as a, {dblp_root}/% as b \
                 where a contains '1999' and b contains 'ICDE'"
            ),
            "1999",
        ),
        (
            "multimedia",
            ["1999", "1995"],
            format!(
                "select meet(a, b) from {mm_root}/% as a, {mm_root}/% as b \
                 where a contains '1999' and b contains '1995'"
            ),
            "1995",
        ),
        (
            "deep",
            ["s", "t"],
            "select meet(a, b) from root/% as a, root/% as b \
             where a contains 's' and b contains 't'"
                .to_owned(),
            "s",
        ),
    ]
}

fn three_corpus_catalog() -> Catalog {
    let mut catalog = Catalog::new();
    catalog
        .add("dblp", Arc::new(dblp()) as Arc<dyn MeetBackend>)
        .unwrap();
    catalog
        .add("multimedia", Arc::new(multimedia()) as Arc<dyn MeetBackend>)
        .unwrap();
    catalog
        .add("deep", Arc::new(deep()) as Arc<dyn MeetBackend>)
        .unwrap();
    catalog
}

fn direct(name: &str) -> Database {
    match name {
        "dblp" => dblp(),
        "multimedia" => multimedia(),
        "deep" => deep(),
        _ => unreachable!(),
    }
}

#[test]
fn three_corpus_catalog_answers_match_per_corpus_databases_byte_for_byte() {
    let forest = ForestBackend::new(three_corpus_catalog()).unwrap();
    let opts = MeetOptions::default();
    for (name, terms, sql, search_term) in probes() {
        let reference = direct(name);
        let routed = forest.corpus(name).expect("corpus resolves");

        // MEET: byte-identical serialized answers.
        let expected = reference.meet_terms(&terms).unwrap().to_detailed_xml();
        let actual = routed.meet_terms_answers(&terms, &opts).to_detailed_xml();
        assert_eq!(actual, expected, "{name}: MEET drifted through the catalog");

        // SQL: the corpus clause routes inside the evaluator.
        let clause_sql = sql.replacen("from ", &format!("from corpus({name}), "), 1);
        let through_forest = run_query(&forest, &clause_sql)
            .unwrap_or_else(|e| panic!("{name}: forest sql failed: {e}"));
        let direct_out = run_query(&reference, &sql)
            .unwrap_or_else(|e| panic!("{name}: direct sql failed: {e}"));
        let ser = |o: &QueryOutput| match o {
            QueryOutput::Answers(a) => a.to_detailed_xml(),
            QueryOutput::Rows(r) => r.to_answer_xml(),
        };
        assert_eq!(
            ser(&through_forest),
            ser(&direct_out),
            "{name}: SQL drifted through the catalog"
        );

        // SEARCH: same hits.
        assert_eq!(
            routed.search(search_term),
            reference.search(search_term),
            "{name}: SEARCH drifted through the catalog"
        );
    }
}

#[test]
fn cross_corpus_fanout_order_is_stable_and_corpus_tagged() {
    let forest = ForestBackend::new(three_corpus_catalog()).unwrap();
    let opts = MeetOptions::default();
    // "1999" + "1995" hit dblp and multimedia but not deep: the
    // concatenation must list dblp's answers first (catalog order),
    // each tagged, and serialize identically across runs.
    let first = forest.meet_terms_forest(&["1999", "1995"], &opts);
    assert!(!first.is_empty());
    let corpora: Vec<&str> = first
        .results
        .iter()
        .map(|r| r.corpus.as_deref().expect("forest answers are tagged"))
        .collect();
    // Grouped by corpus, in catalog order.
    let mut seen: Vec<&str> = Vec::new();
    for c in &corpora {
        if seen.last() != Some(c) {
            assert!(!seen.contains(c), "corpus groups interleaved: {corpora:?}");
            seen.push(c);
        }
    }
    let catalog_order = ["dblp", "multimedia", "deep"];
    let positions: Vec<usize> = seen
        .iter()
        .map(|c| catalog_order.iter().position(|k| k == c).unwrap())
        .collect();
    assert!(
        positions.windows(2).all(|w| w[0] < w[1]),
        "corpus groups out of catalog order: {seen:?}"
    );
    // Within each corpus group the answers are exactly the per-corpus
    // ranked answers.
    for (name, _, _, _) in probes() {
        let expected = direct(name).meet_terms(&["1999", "1995"]).unwrap();
        let group: Vec<_> = first
            .results
            .iter()
            .filter(|r| r.corpus.as_deref() == Some(name))
            .collect();
        assert_eq!(group.len(), expected.len(), "{name}: group size");
        for (got, want) in group.iter().zip(&expected.results) {
            assert_eq!(got.oid, want.oid, "{name}: per-corpus order drifted");
            assert_eq!(got.distance, want.distance);
        }
    }
    // Byte-stable across repeated runs.
    let again = forest.meet_terms_forest(&["1999", "1995"], &opts);
    assert_eq!(first.to_detailed_xml(), again.to_detailed_xml());
}

/// The bounded, batched hot path replays the forest probes
/// byte-identically. Per corpus: (a) the shared-evaluation batch
/// executor answers the probe (plus a duplicate and a `limit 1`
/// variant) exactly like serial evaluation; (b) a forest `Server`
/// answers the routed MEET identically cold, batched and from a warmed
/// semantic cache — with the per-corpus `limit` on the wire returning
/// the ranked prefix.
#[test]
fn batched_and_cached_forest_replay_is_byte_stable() {
    use nearest_concept::core::BatchQuery;
    use nearest_concept::server::{Request, Response, Server, ServerConfig};

    // (a) Per-corpus batch executor vs serial, duplicates and limits in
    // one batch.
    for (name, terms, _, _) in probes() {
        let db = direct(name);
        let hits: Vec<_> = terms.iter().map(|t| db.search(t)).collect();
        let refs: Vec<&_> = hits.iter().collect();
        let opts = MeetOptions::default();
        let limited = MeetOptions {
            limit: Some(1),
            ..MeetOptions::default()
        };
        let queries = vec![
            BatchQuery::new(refs.clone(), opts.clone()),
            BatchQuery::new(refs.clone(), limited.clone()),
            BatchQuery::new(refs.clone(), opts.clone()),
        ];
        let batched = db.meet_hits_batch(&queries);
        let serial = db.meet_hits(&refs, &opts);
        assert_eq!(batched[0], serial, "{name}: batched != serial");
        assert_eq!(batched[2], serial, "{name}: duplicate diverged");
        let cut = 1usize.min(serial.len());
        assert_eq!(
            batched[1],
            serial[..cut],
            "{name}: limit 1 != ranked prefix"
        );
    }

    // (b) A forest server over the same catalog: concurrent routed
    // MEETs (shared batch windows), then a warmed-cache replay, then
    // the wire-level limit — all byte-identical to the direct engines.
    let forest = ForestBackend::new(three_corpus_catalog()).unwrap();
    let server = Server::start_backend(
        Arc::new(forest),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );
    let meet = |corpus: &str, terms: &[&str; 2], limit: Option<usize>| match server
        .client()
        .request(Request::MeetTerms {
            terms: terms.iter().map(|t| t.to_string()).collect(),
            within: None,
            limit,
            corpus: Some(corpus.to_owned()),
        })
        .unwrap()
    {
        Response::Answers(a) => a,
        other => panic!("{corpus}: unexpected {other:?}"),
    };

    let handles: Vec<_> = probes()
        .into_iter()
        .map(|(name, terms, _, _)| {
            let client = server.client();
            std::thread::spawn(move || {
                let got = match client
                    .request(Request::MeetTerms {
                        terms: terms.iter().map(|t| t.to_string()).collect(),
                        within: None,
                        limit: None,
                        corpus: Some(name.to_owned()),
                    })
                    .unwrap()
                {
                    Response::Answers(a) => a.to_detailed_xml(),
                    other => panic!("{name}: unexpected {other:?}"),
                };
                (name, got)
            })
        })
        .collect();
    for h in handles {
        let (name, got) = h.join().unwrap();
        let expected = direct(name)
            .meet_terms(&probes().iter().find(|p| p.0 == name).unwrap().1)
            .unwrap()
            .to_detailed_xml();
        assert_eq!(got, expected, "{name}: batched forest serving drifted");
    }
    for (name, terms, _, _) in probes() {
        let expected = direct(name).meet_terms(&terms).unwrap();
        // Warmed semantic cache: still the exact bytes.
        let cached = meet(name, &terms, None);
        assert_eq!(
            cached.to_detailed_xml(),
            expected.to_detailed_xml(),
            "{name}: cached forest replay drifted"
        );
        // The wire-level limit answers the ranked prefix.
        let bounded = meet(name, &terms, Some(1));
        let cut = 1usize.min(expected.results.len());
        assert_eq!(
            bounded.results,
            expected.results[..cut],
            "{name}: LIMIT 1 != ranked prefix over the wire"
        );
    }
    let stats = server.shutdown();
    assert!(
        stats.sem_hits >= probes().len(),
        "the warmed pass must hit the semantic cache (hits {}, misses {})",
        stats.sem_hits,
        stats.sem_misses
    );
}

#[test]
fn manifest_cold_start_replays_the_same_answers_with_a_sharded_corpus() {
    let dir = std::env::temp_dir().join("ncq-forest-golden-manifest");
    std::fs::create_dir_all(&dir).unwrap();
    let paths: Vec<(&str, PathBuf, usize)> = vec![
        ("dblp", dir.join("dblp.ncq"), 1),
        ("multimedia", dir.join("multimedia.ncq"), 4),
        ("deep", dir.join("deep.ncq"), 1),
    ];
    // The multimedia corpus is saved *through the sharded engine* so
    // the snapshot carries a partition cut and the manifest's shard
    // count exercises the (corpus, shard) routing path.
    dblp().save_snapshot(&paths[0].1).unwrap();
    nearest_concept::ShardedDb::new(multimedia(), 4)
        .save_snapshot(&paths[1].1)
        .unwrap();
    deep().save_snapshot(&paths[2].1).unwrap();

    let mut manifest = Manifest::new();
    for (name, path, shards) in &paths {
        manifest
            .push(ManifestEntry::describe(*name, path, *shards).unwrap())
            .unwrap();
    }
    let mpath = dir.join("forest.ncqm");
    manifest.save(&mpath).unwrap();

    let forest = open_forest(&mpath).unwrap();
    assert_eq!(forest.corpus_names(), vec!["dblp", "multimedia", "deep"]);
    let opts = MeetOptions::default();
    for (name, terms, _, _) in probes() {
        let expected = direct(name).meet_terms(&terms).unwrap().to_detailed_xml();
        let actual = forest
            .corpus(name)
            .unwrap()
            .meet_terms_answers(&terms, &opts)
            .to_detailed_xml();
        assert_eq!(actual, expected, "{name}: manifest cold start drifted");
    }
    // A programmatic sharded corpus agrees too (catalog over ShardedDb
    // built in-process rather than snapshot-loaded).
    let mut catalog = Catalog::new();
    catalog
        .add("multimedia", sharded_corpus(multimedia(), 4))
        .unwrap();
    let sharded_forest = ForestBackend::new(catalog).unwrap();
    assert_eq!(
        sharded_forest
            .meet_terms_answers(&["1999", "1995"], &opts)
            .to_detailed_xml(),
        multimedia()
            .meet_terms(&["1999", "1995"])
            .unwrap()
            .to_detailed_xml()
    );

    // Corruption at the catalog level fails typed: a dangling snapshot
    // path (the manifest survives, the corpus file is gone)…
    std::fs::remove_file(&paths[2].1).unwrap();
    assert!(matches!(
        open_forest(&mpath),
        Err(CatalogError::Corpus { name, .. }) if name == "deep"
    ));
    // …and a swapped snapshot file behind an unchanged manifest.
    dblp().save_snapshot(&paths[2].1).unwrap(); // wrong bytes for "deep"
    assert!(matches!(
        open_forest(&mpath),
        Err(CatalogError::ChecksumMismatch { name }) if name == "deep"
    ));

    for (_, p, _) in &paths {
        std::fs::remove_file(p).ok();
    }
    std::fs::remove_file(&mpath).ok();
}
