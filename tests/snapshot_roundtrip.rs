//! Snapshot persistence suite: round-trip equivalence on random trees,
//! byte determinism, exhaustive corruption handling, and the layout
//! version pin.
//!
//! Seeded loops over the vendored deterministic PRNG stand in for
//! proptest (the offline build cannot fetch it); failures print the
//! seed.
//!
//! The pinned fixture `tests/golden/snapshot_v3.bin` is a committed
//! current-layout snapshot of the Figure 1 corpus (saved through
//! `ShardedDb` at K = 4 so every section id, including the partition
//! map, is exercised). Regenerate after an *intended* layout change —
//! which must also bump `SNAPSHOT_VERSION` — with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test snapshot_roundtrip
//! ```
//!
//! Backward compatibility with the *older* committed fixtures
//! (`snapshot_v1.bin`, `snapshot_v2.bin`) lives in `tests/snapshot_v3.rs`.

use nearest_concept::core::{MeetOptions, MeetStrategy};
use nearest_concept::store::{
    MappedSnapshot, SnapshotError, SnapshotSource, VerifyMode, SNAPSHOT_VERSION,
};
use nearest_concept::xml::Document;
use nearest_concept::{Database, ShardedDb};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::path::PathBuf;

/// Random tree with text leaves, as in the sharding equivalence suite:
/// node `i + 1` hangs under a random earlier node; some nodes carry
/// cdata from a small token pool so string relations, postings and the
/// partition weights are all exercised.
fn random_tree(rng: &mut StdRng) -> Document {
    const TAGS: [&str; 5] = ["a", "b", "c", "d", "e"];
    const WORDS: [&str; 6] = ["alpha", "beta", "gamma", "delta", "twin peaks", "omega"];
    let mut doc = Document::new("root");
    let mut nodes = vec![doc.root()];
    let n = rng.random_range(1usize..150);
    for i in 0..n {
        let parent = nodes[rng.random_range(0..nodes.len())];
        let node = doc.add_element(parent, TAGS[i % TAGS.len()]);
        if rng.random_range(0..3usize) == 0 {
            let w1 = WORDS[rng.random_range(0..WORDS.len())];
            let w2 = WORDS[rng.random_range(0..WORDS.len())];
            doc.add_text(node, format!("{w1} {w2}"));
        }
        nodes.push(node);
    }
    doc
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ncq-snapshot-roundtrip");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(name)
}

/// Round-trip property: for random trees, a save → load cycle answers
/// `meet_sets` and `meet_multi` identically — document order, join
/// accounting and witness samples included — through both the plain
/// `Database` and a `ShardedDb` at random K reloaded from the same
/// file.
#[test]
fn random_trees_round_trip_with_identical_meets() {
    for seed in 0u64..25 {
        let mut rng = StdRng::seed_from_u64(0x5eed_0000 + seed);
        let doc = random_tree(&mut rng);
        let original = Database::from_document(&doc);
        let k = rng.random_range(1usize..6);

        let path = scratch(&format!("prop-{seed}.ncq"));
        let sharded = ShardedDb::new(original.clone(), k);
        sharded.save_snapshot(&path).expect("save");
        let loaded = Database::open_snapshot(&path).expect("load");
        let loaded_sharded = ShardedDb::open_snapshot(&path, k).expect("load sharded");

        // meet_sets over a random homogeneous pair, every strategy.
        let store = original.store();
        let anchor =
            nearest_concept::store::Oid::from_index(rng.random_range(0..store.node_count()));
        let candidates = store.meet_index().oids_of_path(store.sigma(anchor));
        let pick = |rng: &mut StdRng| {
            let len = rng.random_range(1..candidates.len().min(8) + 1);
            (0..len)
                .map(|_| candidates[rng.random_range(0..candidates.len())])
                .collect::<Vec<_>>()
        };
        let (s1, s2) = (pick(&mut rng), pick(&mut rng));
        for strategy in [MeetStrategy::Auto, MeetStrategy::Lift, MeetStrategy::Sweep] {
            let a = original.meet_oid_sets_with(&s1, &s2, strategy).unwrap();
            let b = loaded.meet_oid_sets_with(&s1, &s2, strategy).unwrap();
            assert_eq!(a.meets, b.meets, "seed {seed} strategy {strategy:?}");
            assert_eq!(a.join_rounds, b.join_rounds, "seed {seed}");
            let c = loaded_sharded
                .meet_oid_sets_with(&s1, &s2, strategy)
                .unwrap();
            assert_eq!(a.meets, c.meets, "seed {seed} sharded K={k}");
        }

        // meet_multi through the full term pipeline: serialized answer
        // XML pins ranking, distances, document order and witnesses.
        let terms = ["alpha", "beta", "twin peaks"];
        let options = MeetOptions::default();
        let a = original.meet_terms_with(&terms, &options).unwrap();
        let b = loaded.meet_terms_with(&terms, &options).unwrap();
        assert_eq!(
            a.to_detailed_xml(),
            b.to_detailed_xml(),
            "seed {seed}: loaded Database diverged"
        );
        let c = loaded_sharded.meet_terms_with(&terms, &options).unwrap();
        assert_eq!(
            a.to_detailed_xml(),
            c.to_detailed_xml(),
            "seed {seed}: loaded ShardedDb (K={k}) diverged"
        );

        std::fs::remove_file(&path).ok();
    }
}

/// Determinism: snapshot bytes are a pure function of the database —
/// two saves agree, and a save → load → save cycle is byte-stable.
#[test]
fn snapshot_bytes_are_deterministic_across_saves_and_reloads() {
    let mut rng = StdRng::seed_from_u64(0x0dec_eded);
    let doc = random_tree(&mut rng);
    let db = Database::from_document(&doc);
    let first = db.snapshot_to_bytes();
    assert_eq!(first, db.snapshot_to_bytes(), "same engine, two saves");
    let reloaded = Database::from_snapshot_bytes(first.clone()).expect("reload");
    assert_eq!(
        first,
        reloaded.snapshot_to_bytes(),
        "save -> load -> save drifted"
    );
}

/// Corruption never panics: truncating at *every* section boundary
/// (and just inside each), flipping bytes across the header and every
/// section-table entry, and flipping a byte inside every payload all
/// surface as typed `SnapshotError`s.
#[test]
fn corrupt_snapshots_fail_typed_at_every_boundary() {
    let db = Database::from_xml_str(nearest_concept::datagen::FIGURE1_XML).unwrap();
    let sharded = ShardedDb::new(db, 4);
    let path = scratch("corrupt.ncq");
    sharded.save_snapshot(&path).expect("save");
    let bytes = std::fs::read(&path).expect("read");
    std::fs::remove_file(&path).ok();

    // Decode through the v3 mapped path with *eager* verification so a
    // payload flip in a lazily-checked section (columns, meet index,
    // stats) still surfaces as a typed checksum error rather than a
    // semantically-plausible wrong value.
    let decode = |data: Vec<u8>| -> Result<(), SnapshotError> {
        let snap = MappedSnapshot::from_owned_bytes(data, VerifyMode::Eager)?;
        ShardedDb::from_source(&SnapshotSource::Mapped(snap), 4)?;
        Ok(())
    };
    decode(bytes.clone()).expect("pristine bytes decode");

    // Section boundaries from the v3 table (24-byte header, 32-byte
    // entries): offset and offset+len of every section, plus the
    // header/table edges.
    let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
    let table_end = 24 + 32 * count;
    let mut boundaries = vec![0, 4, 8, 12, 16, 23, 24, table_end - 1, table_end];
    for i in 0..count {
        let at = 24 + 32 * i;
        let offset = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().unwrap()) as usize;
        boundaries.extend([offset, offset + 1, offset + len / 2, offset + len]);
    }
    boundaries.retain(|&b| b < bytes.len());
    for &cut in &boundaries {
        assert!(
            decode(bytes[..cut].to_vec()).is_err(),
            "truncation at {cut} decoded"
        );
    }

    // Bit flips: every header/table byte, and one byte inside every
    // section payload (start, middle, last).
    let mut flip_at: Vec<usize> = (0..table_end).collect();
    for i in 0..count {
        let at = 24 + 32 * i;
        let offset = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap()) as usize;
        let len = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().unwrap()) as usize;
        if len > 0 {
            flip_at.extend([offset, offset + len / 2, offset + len - 1]);
        }
    }
    for &at in &flip_at {
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 0x40;
        assert!(
            decode(corrupt).is_err(),
            "bit flip at {at} decoded as pristine"
        );
    }
}

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join(format!("snapshot_v{SNAPSHOT_VERSION}.bin"))
}

/// The layout version pin. The committed fixture must (a) carry the
/// current `SNAPSHOT_VERSION`, (b) decode into an engine that answers
/// a known meet, and (c) re-encode to the **exact committed bytes**.
/// Any layout change that forgets to bump the version fails here
/// loudly: either the old fixture no longer decodes, or the re-encoded
/// bytes drift from the committed ones. After an intended change, bump
/// `SNAPSHOT_VERSION` and regenerate with `UPDATE_GOLDEN=1`.
#[test]
fn pinned_fixture_guards_the_layout_version() {
    let path = fixture_path();
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    if update {
        let db = Database::from_xml_str(nearest_concept::datagen::FIGURE1_XML).unwrap();
        let sharded = ShardedDb::new(db, 4);
        sharded.save_snapshot(&path).expect("write fixture");
        return;
    }
    let bytes = std::fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {path:?} ({e}); run UPDATE_GOLDEN=1 cargo test --test \
             snapshot_roundtrip to create it"
        )
    });
    let header_version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    assert_eq!(
        header_version, SNAPSHOT_VERSION,
        "fixture carries layout version {header_version}, build reads {SNAPSHOT_VERSION}; \
         regenerate the fixture (UPDATE_GOLDEN=1) and commit it as snapshot_v{SNAPSHOT_VERSION}.bin"
    );

    let loaded = Database::from_snapshot_bytes(bytes.clone()).unwrap_or_else(|e| {
        panic!(
            "the committed v{SNAPSHOT_VERSION} fixture no longer decodes ({e}); \
             the layout changed without a SNAPSHOT_VERSION bump"
        )
    });
    let answers = loaded.meet_terms(&["Bit", "1999"]).expect("probe meet");
    assert_eq!(answers.tags(), vec!["article"], "fixture answers drifted");

    // ShardedDb reuses the fixture's persisted K = 4 partition map.
    let p = scratch("fixture-copy.ncq");
    std::fs::write(&p, &bytes).expect("stage fixture");
    let sharded = ShardedDb::open_snapshot(&p, 4).expect("sharded fixture load");
    assert_eq!(sharded.partition().requested_k(), 4);
    assert_eq!(
        sharded
            .meet_terms(&["Bit", "1999"])
            .unwrap()
            .to_detailed_xml(),
        answers.to_detailed_xml()
    );
    std::fs::remove_file(&p).ok();

    // Byte-stability: re-encoding the loaded engine plus its partition
    // map must reproduce the committed bytes exactly.
    let mut writer = loaded.encode_snapshot_v3();
    sharded.partition().encode_snapshot_v3(&mut writer);
    assert_eq!(
        writer.to_bytes(),
        bytes,
        "re-encoded bytes drifted from the committed v{SNAPSHOT_VERSION} fixture; \
         bump SNAPSHOT_VERSION and regenerate (UPDATE_GOLDEN=1)"
    );
}
