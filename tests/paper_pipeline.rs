//! End-to-end reproduction of the paper's qualitative results, spanning
//! every crate: datagen → xml → store → fulltext → core → query.

use nearest_concept::core::{MeetOptions, PathFilter};
use nearest_concept::{run_query, Database, QueryOutput};

fn figure1_db() -> Database {
    Database::from_xml_str(nearest_concept::datagen::FIGURE1_XML).unwrap()
}

#[test]
fn listing1_baseline_has_ancestor_implied_answers() {
    let db = figure1_db();
    let out = run_query(
        &db,
        "select $T from %/$T as t1, %/$T as t2 \
         where t1 contains 'Bit' and t2 contains '1999'",
    )
    .unwrap();
    let QueryOutput::Rows(rows) = out else {
        panic!("baseline is a projection")
    };
    let mut tags: Vec<&str> = rows.rows.iter().map(|r| r.values[0].as_str()).collect();
    tags.sort_unstable();
    // Four rows: the desired article plus the rows the paper calls
    // "implied by the path from the first node to the root".
    assert_eq!(
        tags,
        vec!["article", "article", "bibliography", "institute"]
    );
}

#[test]
fn listing2_meet_is_the_true_subset() {
    let db = figure1_db();
    let out = run_query(
        &db,
        "select meet(t1, t2) from bibliography/% as t1, bibliography/% as t2 \
         where t1 contains 'Bit' and t2 contains '1999'",
    )
    .unwrap();
    let QueryOutput::Answers(a) = out else {
        panic!("meet query")
    };
    // "<answer><result> article </result></answer>"
    assert_eq!(a.tags(), vec!["article"]);
    // …and it is a subset of the baseline's answer tags.
}

#[test]
fn section_3_1_worked_examples() {
    let db = figure1_db();
    // meet("Ben","Bit") = the author node.
    assert_eq!(
        db.meet_terms(&["Ben", "Bit"]).unwrap().tags(),
        vec!["author"]
    );
    // meet("Bob","Byte") = the cdata node itself (same association).
    assert_eq!(
        db.meet_terms(&["Bob", "Byte"]).unwrap().tags(),
        vec!["cdata"]
    );
    // meet("Bit","1999") = the article.
    assert_eq!(
        db.meet_terms(&["Bit", "1999"]).unwrap().tags(),
        vec!["article"]
    );
}

#[test]
fn section_3_1_nested_meet_only_reveals_the_institute() {
    // The paper: meet(å1, meet(å2, å3)) = o2 "only reveals that the three
    // associations are located in the bibliography of an institute" —
    // the nested grouping loses the article.
    let db = figure1_db();
    let store = db.store();
    let bit = db.search("Bit").iter().next().unwrap().1;
    let years: Vec<_> = db.search("1999").iter().map(|(_, o)| o).collect();
    assert_eq!(years.len(), 2);
    let inner = db.meet_pair(years[0], years[1]).meet;
    assert_eq!(store.tag(inner), Some("institute"));
    let outer = db.meet_pair(bit, inner).meet;
    assert_eq!(store.tag(outer), Some("institute"));
}

#[test]
fn figure2_relations_exist_with_paper_names() {
    let db = figure1_db();
    let store = db.store();
    let names: Vec<String> = store
        .summary()
        .iter()
        .map(|p| store.relation_name(p))
        .collect();
    // Spot-check the relation names of the paper's Figure 2.
    for expected in [
        "bibliography/institute/article/author/firstname/cdata",
        "bibliography/institute/article/author/lastname/cdata",
        "bibliography/institute/article/title/cdata",
        "bibliography/institute/article/year/cdata",
        "bibliography/institute/article/@key",
    ] {
        assert!(names.contains(&expected.to_string()), "missing {expected}");
    }
}

#[test]
fn meet_pi_blocks_the_document_root() {
    let db = figure1_db();
    // "Ben" and "RSI" live in different articles; their meet is the
    // institute. Excluding institute AND bibliography kills everything.
    let store = db.store();
    let inst = store
        .summary()
        .lookup_in(&["bibliography", "institute"], store.symbols())
        .unwrap();
    let opts = MeetOptions {
        filter: PathFilter::excluding([inst, store.sigma(store.root())]),
        ..MeetOptions::default()
    };
    let answers = db.meet_terms_with(&["Ben", "RSI"], &opts).unwrap();
    assert!(answers.is_empty());
}

#[test]
fn query_language_and_direct_api_agree() {
    let db = figure1_db();
    let api = db.meet_terms(&["Bit", "1999"]).unwrap();
    let out = run_query(
        &db,
        "select meet(a, b) from bibliography/% as a, bibliography/% as b \
         where a contains 'Bit' and b contains '1999'",
    )
    .unwrap();
    let QueryOutput::Answers(lang) = out else {
        panic!()
    };
    assert_eq!(api.tags(), lang.tags());
    assert_eq!(api.results[0].oid, lang.results[0].oid);
    assert_eq!(api.results[0].distance, lang.results[0].distance);
}

#[test]
fn object_reassembly_recovers_the_paper_example() {
    // Paper §2 end: the object behind the second article is the set of
    // its associations — key, author, title, year.
    let db = figure1_db();
    let store = db.store();
    let bk99 = db.search("BK99").iter().next().unwrap().1;
    let view = nearest_concept::store::ObjectView::assemble(store, bk99);
    assert_eq!(view.label, "article");
    assert_eq!(
        view.attributes,
        vec![("key".to_string(), "BK99".to_string())]
    );
    assert_eq!(view.children.len(), 3); // author, title, year
}
