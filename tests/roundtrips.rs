//! Cross-crate round trips: generated corpora survive serialization,
//! re-parsing and re-loading; stores built from either copy agree on
//! meets.

use nearest_concept::datagen::{DblpConfig, DblpCorpus, MultimediaConfig, MultimediaCorpus};
use nearest_concept::store::MonetDb;
use nearest_concept::xml::{parse, write_document, WriteOptions};
use nearest_concept::Database;

#[test]
fn dblp_survives_write_parse_load() {
    let corpus = DblpCorpus::generate(&DblpConfig {
        papers_per_edition: 4,
        journal_articles_per_year: 2,
        ..DblpConfig::default()
    });
    let xml = write_document(&corpus.document, WriteOptions::default());
    let reparsed = parse(&xml).expect("generated XML re-parses");
    assert!(corpus.document.structural_eq(&reparsed));

    let a = MonetDb::from_document(&corpus.document);
    let b = MonetDb::from_document(&reparsed);
    assert_eq!(a.node_count(), b.node_count());
    assert_eq!(a.summary().len(), b.summary().len());
    let sa = a.stats();
    let sb = b.stats();
    assert_eq!(sa, sb);
}

#[test]
fn multimedia_survives_pretty_printing() {
    let corpus = MultimediaCorpus::generate(&MultimediaConfig {
        noise_items: 20,
        max_distance: 6,
        probes_per_distance: 1,
        ..MultimediaConfig::default()
    });
    let pretty = write_document(
        &corpus.document,
        WriteOptions {
            indent: Some(2),
            declaration: true,
        },
    );
    let reparsed = parse(&pretty).expect("pretty XML re-parses");
    assert!(corpus.document.structural_eq(&reparsed));
}

#[test]
fn meets_agree_across_serialization() {
    let corpus = DblpCorpus::generate(&DblpConfig {
        papers_per_edition: 5,
        journal_articles_per_year: 2,
        ..DblpConfig::default()
    });
    let db1 = Database::from_document(&corpus.document);
    let xml = write_document(&corpus.document, WriteOptions::default());
    let db2 = Database::from_xml_str(&xml).unwrap();

    for terms in [
        vec!["ICDE", "1999"],
        vec!["VLDB", "1990"],
        vec!["Schmidt", "1995"],
    ] {
        let a = db1.meet_terms(&terms).unwrap();
        let b = db2.meet_terms(&terms).unwrap();
        assert_eq!(a.tags(), b.tags(), "terms {terms:?}");
        let da: Vec<usize> = a.results.iter().map(|r| r.distance).collect();
        let db_: Vec<usize> = b.results.iter().map(|r| r.distance).collect();
        assert_eq!(da, db_, "terms {terms:?}");
    }
}

#[test]
fn facade_reexports_cover_the_stack() {
    // The facade must expose every layer (compile-time check, executed
    // for completeness).
    let db = Database::from_xml_str("<a><b>x</b></a>").unwrap();
    let _: &nearest_concept::store::MonetDb = db.store();
    let _: &nearest_concept::fulltext::InvertedIndex = db.index();
    let hits: nearest_concept::fulltext::HitSet = db.search("x");
    assert_eq!(hits.len(), 1);
    let answers: nearest_concept::AnswerSet = db.meet_terms(&["x"]).unwrap();
    assert!(answers.is_empty()); // one lone hit never meets
}
