//! Golden snapshots of every Listing/Figure query of the paper.
//!
//! Each query runs through `run_query` over the Figure 1 document and
//! its **full** serialized output — the detailed `AnswerSet` XML with
//! result oids, paths, distances and witnesses, or the complete
//! projection row set — is compared byte-for-byte against a checked-in
//! fixture under `tests/golden/`. Any behavioural drift (ranking,
//! witness accounting, planner routing, serialization) shows up as a
//! fixture diff instead of slipping past tag-only assertions.
//!
//! Regenerate after an *intended* change with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test paper_listings_golden
//! ```

use nearest_concept::{run_query, Database, QueryOutput};
use std::path::PathBuf;

/// The paper queries under snapshot, name → query text.
///
/// Sources: Listing 1/2 (introduction and §3.2), the §3.1 worked
/// examples (meet of two full-text hits), and the §4 extensions
/// (`within` = meet^δ, `excluding`/`only` = meet_Π) plus attribute
/// search, scoped paths and conjunctive predicates.
const QUERIES: &[(&str, &str)] = &[
    (
        "listing1_baseline",
        "select $T from %/$T as t1, %/$T as t2 \
         where t1 contains 'Bit' and t2 contains '1999'",
    ),
    (
        "listing2_meet",
        "select meet(t1, t2) from bibliography/% as t1, bibliography/% as t2 \
         where t1 contains 'Bit' and t2 contains '1999'",
    ),
    (
        "sec31_ben_bit_author",
        "select meet(t1, t2) from bibliography/% as t1, bibliography/% as t2 \
         where t1 contains 'Ben' and t2 contains 'Bit'",
    ),
    (
        "sec31_bob_byte_cdata",
        "select meet(t1, t2) from bibliography/% as t1, bibliography/% as t2 \
         where t1 contains 'Bob' and t2 contains 'Byte'",
    ),
    (
        "sec31_cross_article_institute",
        "select meet(t1, t2) from bibliography/% as t1, bibliography/% as t2 \
         where t1 contains 'Ben' and t2 contains 'RSI'",
    ),
    (
        "sec4_within_blocks_article",
        "select meet(t1, t2) within 4 \
         from bibliography/% as t1, bibliography/% as t2 \
         where t1 contains 'Bit' and t2 contains '1999'",
    ),
    (
        "sec4_within_admits_article",
        "select meet(t1, t2) within 5 \
         from bibliography/% as t1, bibliography/% as t2 \
         where t1 contains 'Bit' and t2 contains '1999'",
    ),
    (
        "sec4_excluding_institute",
        "select meet(t1, t2) excluding bibliography/institute \
         from bibliography/% as t1, bibliography/% as t2 \
         where t1 contains 'Ben' and t2 contains 'RSI'",
    ),
    (
        "sec4_only_article",
        "select meet(t1, t2) only bibliography/institute/article \
         from bibliography/% as t1, bibliography/% as t2 \
         where t1 contains 'Bit' and t2 contains '1999'",
    ),
    (
        "attribute_key_meets_author",
        "select meet(t1, t2) from bibliography/%/@key as t1, bibliography/% as t2 \
         where t1 contains 'BB99' and t2 contains 'Ben'",
    ),
    (
        "scoped_title_shifts_the_meet",
        "select meet(t1, t2) from bibliography/%/title as t1, bibliography/% as t2 \
         where t1 contains 'Bit' and t2 contains '1999'",
    ),
    (
        "conjunctive_bob_byte",
        "select meet(t1, t2) from bibliography/% as t1, bibliography/% as t2 \
         where t1 contains 'Bob' and t1 contains 'Byte' and t2 contains '1999'",
    ),
    (
        "four_terms_ranked",
        "select meet(t1, t2, t3, t4) \
         from bibliography/% as t1, bibliography/% as t2, \
              bibliography/% as t3, bibliography/% as t4 \
         where t1 contains 'Bob' and t2 contains 'Byte' \
           and t3 contains 'Ben' and t4 contains 'Bit'",
    ),
    (
        "unconditioned_variable_binds_years",
        "select meet(t1, t2) from bibliography/% as t1, bibliography/%/year as t2 \
         where t1 contains 'Bit'",
    ),
    (
        "projection_articles",
        "select t from bibliography/institute/article as t",
    ),
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Full serialization of a query output: detailed answer XML for meet
/// queries, the complete row set (columns + rows + nodes) for
/// projections.
fn serialize(output: &QueryOutput) -> String {
    match output {
        QueryOutput::Answers(answers) => answers.to_detailed_xml() + "\n",
        QueryOutput::Rows(rows) => {
            let mut out = format!("<rows columns=\"{}\">\n", rows.columns.join(","));
            for row in &rows.rows {
                let nodes: Vec<String> = row.nodes.iter().map(ToString::to_string).collect();
                out.push_str(&format!(
                    "  <row nodes=\"{}\"> {} </row>\n",
                    nodes.join(","),
                    row.values.join(", ")
                ));
            }
            out.push_str("</rows>\n");
            out
        }
    }
}

#[test]
fn paper_listing_queries_match_golden_fixtures() {
    let db = Database::from_xml_str(nearest_concept::datagen::FIGURE1_XML).unwrap();
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }

    let mut failures = Vec::new();
    for (name, query) in QUERIES {
        let output = run_query(&db, query)
            .unwrap_or_else(|e| panic!("golden query {name} failed to run: {e}"));
        let actual = serialize(&output);
        let path = dir.join(format!("{name}.xml"));
        if update {
            std::fs::write(&path, &actual).expect("write golden fixture");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(expected) if expected == actual => {}
            Ok(expected) => failures.push(format!(
                "{name}: output drifted from {path:?}\n--- expected ---\n{expected}\n--- actual ---\n{actual}"
            )),
            Err(e) => failures.push(format!(
                "{name}: cannot read fixture {path:?} ({e}); run UPDATE_GOLDEN=1 to create it"
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "{} golden mismatches:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The sharded engine answers every paper-listing query byte-identically
/// to the single database: the same fixtures, run through `ShardedDb`
/// at K = 4 (and the degenerate K = 1). The fixtures are *not*
/// regenerated here — `UPDATE_GOLDEN` only applies to the single-db
/// test above, so sharding can never silently redefine the truth.
#[test]
fn sharded_execution_matches_the_golden_fixtures() {
    let db = Database::from_xml_str(nearest_concept::datagen::FIGURE1_XML).unwrap();
    let dir = golden_dir();
    let mut failures = Vec::new();
    for k in [1, 4] {
        let sharded = nearest_concept::ShardedDb::new(db.clone(), k);
        for (name, query) in QUERIES {
            let output = sharded
                .run_query(query)
                .unwrap_or_else(|e| panic!("sharded golden query {name} failed: {e}"));
            let actual = serialize(&output);
            match std::fs::read_to_string(dir.join(format!("{name}.xml"))) {
                Ok(expected) if expected == actual => {}
                Ok(expected) => failures.push(format!(
                    "{name} (K={k}): sharded output drifted\n--- expected ---\n{expected}\n--- actual ---\n{actual}"
                )),
                Err(e) => failures.push(format!(
                    "{name}: cannot read fixture ({e}); run UPDATE_GOLDEN=1 first"
                )),
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} sharded golden mismatches:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// Snapshot cold starts serve the paper byte-identically: the database
/// is saved to a versioned snapshot, reloaded cold, and every golden
/// query re-runs through both the snapshot-loaded `Database` and a
/// snapshot-loaded `ShardedDb` (K = 4, reusing the persisted partition
/// map) against the same fixtures. `UPDATE_GOLDEN` does not apply here
/// either — a snapshot load can never redefine the truth.
#[test]
fn snapshot_loaded_engines_match_the_golden_fixtures() {
    let dir = std::env::temp_dir().join("ncq-golden-snapshot-test");
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join("figure1-golden.ncq");

    let db = Database::from_xml_str(nearest_concept::datagen::FIGURE1_XML).unwrap();
    let sharded = nearest_concept::ShardedDb::new(db, 4);
    sharded.save_snapshot(&path).expect("save snapshot");

    let loaded_db = Database::open_snapshot(&path).expect("open snapshot");
    let loaded_sharded =
        nearest_concept::ShardedDb::open_snapshot(&path, 4).expect("open sharded snapshot");

    let mut failures = Vec::new();
    for (name, query) in QUERIES {
        let expected = match std::fs::read_to_string(golden_dir().join(format!("{name}.xml"))) {
            Ok(x) => x,
            Err(e) => {
                failures.push(format!("{name}: cannot read fixture ({e})"));
                continue;
            }
        };
        let single = serialize(
            &run_query(&loaded_db, query)
                .unwrap_or_else(|e| panic!("snapshot golden query {name} failed: {e}")),
        );
        if single != expected {
            failures.push(format!(
                "{name}: snapshot-loaded Database drifted\n--- expected ---\n{expected}\n--- actual ---\n{single}"
            ));
        }
        let scattered = serialize(
            &loaded_sharded
                .run_query(query)
                .unwrap_or_else(|e| panic!("sharded snapshot golden query {name} failed: {e}")),
        );
        if scattered != expected {
            failures.push(format!(
                "{name}: snapshot-loaded ShardedDb (K=4) drifted\n--- expected ---\n{expected}\n--- actual ---\n{scattered}"
            ));
        }
    }
    std::fs::remove_file(&path).ok();
    assert!(
        failures.is_empty(),
        "{} snapshot golden mismatches:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// A multi-corpus catalog serves the paper byte-identically: the whole
/// suite replays through a [`ForestBackend`] whose default corpus is
/// Figure 1 (with two unrelated corpora alongside), exercising the
/// catalog's default-corpus routing, the explicit
/// `QueryOptions::default_corpus` session routing, and proving a
/// forest never redefines the single-document truth. `UPDATE_GOLDEN`
/// does not apply here.
#[test]
fn forest_routed_execution_matches_the_golden_fixtures() {
    use nearest_concept::core::{Catalog, ForestBackend, MeetBackend};
    use nearest_concept::{run_query_opts, QueryOptions};
    use std::sync::Arc;

    let mut catalog = Catalog::new();
    catalog
        .add(
            "figure1",
            Arc::new(Database::from_xml_str(nearest_concept::datagen::FIGURE1_XML).unwrap())
                as Arc<dyn MeetBackend>,
        )
        .expect("add figure1");
    let (dblp, _) = {
        let corpus =
            nearest_concept::datagen::DblpCorpus::generate(&nearest_concept::datagen::DblpConfig {
                papers_per_edition: 4,
                journal_articles_per_year: 2,
                ..nearest_concept::datagen::DblpConfig::default()
            });
        (Database::from_document(&corpus.document), corpus)
    };
    catalog
        .add("dblp", Arc::new(dblp) as Arc<dyn MeetBackend>)
        .expect("add dblp");
    let (multimedia, _) = {
        let corpus = nearest_concept::datagen::MultimediaCorpus::generate(
            &nearest_concept::datagen::MultimediaConfig {
                noise_items: 20,
                ..nearest_concept::datagen::MultimediaConfig::default()
            },
        );
        (Database::from_document(&corpus.document), corpus)
    };
    catalog
        .add("multimedia", Arc::new(multimedia) as Arc<dyn MeetBackend>)
        .expect("add multimedia");
    let forest = ForestBackend::new(catalog).expect("non-empty catalog");

    let session = QueryOptions {
        default_corpus: Some("figure1".into()),
        ..QueryOptions::default()
    };
    let mut failures = Vec::new();
    for (name, query) in QUERIES {
        let expected = match std::fs::read_to_string(golden_dir().join(format!("{name}.xml"))) {
            Ok(x) => x,
            Err(e) => {
                failures.push(format!("{name}: cannot read fixture ({e})"));
                continue;
            }
        };
        // Default-corpus routing (no corpus named anywhere).
        let routed = serialize(
            &run_query(&forest, query)
                .unwrap_or_else(|e| panic!("forest golden query {name} failed: {e}")),
        );
        if routed != expected {
            failures.push(format!(
                "{name}: forest default routing drifted\n--- expected ---\n{expected}\n--- actual ---\n{routed}"
            ));
        }
        // Session routing (the server's USE path).
        let via_session = serialize(
            &run_query_opts(&forest, query, &session)
                .unwrap_or_else(|e| panic!("forest session query {name} failed: {e}")),
        );
        if via_session != expected {
            failures.push(format!(
                "{name}: forest session routing drifted\n--- expected ---\n{expected}\n--- actual ---\n{via_session}"
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} forest golden mismatches:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

/// The concurrent serving path replays the paper byte-identically —
/// twice. Pass 1 submits every golden query to a running `Server` from
/// parallel threads, so requests share batch windows and the batched
/// executor; pass 2 replays the same queries against the now-warmed
/// semantic result cache, where evaluation is skipped entirely. Both
/// passes must reproduce the pinned fixtures byte-for-byte, and the
/// stats must show pass 2 was served from the cache. `UPDATE_GOLDEN`
/// does not apply here — the serving path can never redefine the truth.
#[test]
fn server_batched_and_cached_replay_matches_the_golden_fixtures() {
    use nearest_concept::server::{Response, Server, ServerConfig};
    use std::sync::Arc;

    fn serialize_response(r: Response) -> String {
        match r {
            Response::Answers(a) => serialize(&QueryOutput::Answers(a)),
            Response::Rows(rows) => serialize(&QueryOutput::Rows(rows)),
            other => panic!("unexpected {other:?}"),
        }
    }

    let db = Database::from_xml_str(nearest_concept::datagen::FIGURE1_XML).unwrap();
    let server = Server::start(
        Arc::new(db),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    );

    let dir = golden_dir();
    let expected: Vec<(&str, String)> = QUERIES
        .iter()
        .map(|&(name, _)| {
            let fixture =
                std::fs::read_to_string(dir.join(format!("{name}.xml"))).unwrap_or_else(|e| {
                    panic!("{name}: cannot read fixture ({e}); run UPDATE_GOLDEN=1 first")
                });
            (name, fixture)
        })
        .collect();

    // Pass 1: every query in flight at once — shared batch windows.
    let handles: Vec<_> = QUERIES
        .iter()
        .map(|&(name, query)| {
            let client = server.client();
            std::thread::spawn(move || (name, serialize_response(client.sql(query).unwrap())))
        })
        .collect();
    let mut cold: Vec<(&str, String)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    cold.sort_by_key(|&(name, _)| name);
    for (name, fixture) in &expected {
        let got = &cold.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(
            got, fixture,
            "{name}: batched serving drifted from the fixture"
        );
    }

    // Pass 2: warmed semantic cache — still the exact fixture bytes.
    let client = server.client();
    for (name, query) in QUERIES {
        let got = serialize_response(client.sql(*query).unwrap());
        let fixture = &expected.iter().find(|(n, _)| n == name).unwrap().1;
        assert_eq!(
            &got, fixture,
            "{name}: cached replay drifted from the fixture"
        );
    }

    let stats = server.shutdown();
    assert_eq!(
        stats.sem_hits + stats.sem_misses,
        2 * QUERIES.len(),
        "every golden query is exactly one semantic hit or miss per pass"
    );
    assert!(
        stats.sem_hits >= QUERIES.len(),
        "the warmed pass must be served from the semantic cache \
         (hits {}, misses {})",
        stats.sem_hits,
        stats.sem_misses
    );
}

/// The suite stays in sync with the fixture directory: no orphaned
/// fixtures, no duplicate query names.
#[test]
fn golden_fixture_directory_is_in_sync() {
    let mut names: Vec<&str> = QUERIES.iter().map(|&(n, _)| n).collect();
    names.sort_unstable();
    let dedup: std::collections::BTreeSet<&str> = names.iter().copied().collect();
    assert_eq!(dedup.len(), names.len(), "duplicate query names");

    let dir = golden_dir();
    if !dir.exists() {
        return; // first run before UPDATE_GOLDEN=1
    }
    for entry in std::fs::read_dir(&dir).expect("read golden dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("xml") {
            // Non-XML fixtures (e.g. the pinned snapshot_v*.bin of the
            // snapshot_roundtrip suite) live here too.
            continue;
        }
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or_default()
            .to_owned();
        assert!(
            dedup.contains(stem.as_str()),
            "orphaned fixture {path:?} (no matching query in the suite)"
        );
    }
}
