//! The future-work extensions of the paper, exercised together: meets
//! over IDREF-broken structures (crossref edges) and thesaurus-broadened
//! searches.
//!
//! ```sh
//! cargo run --release --example references
//! ```

use nearest_concept::core::{distance, graph_distance};
use nearest_concept::datagen::{DblpConfig, DblpCorpus};
use nearest_concept::{Database, RefGraph, Thesaurus};

fn main() {
    let corpus = DblpCorpus::generate(&DblpConfig {
        papers_per_edition: 10,
        journal_articles_per_year: 3,
        ..DblpConfig::default()
    });
    let db = Database::from_document(&corpus.document);
    let store = db.store();

    // --- IDREF graph meets -------------------------------------------
    // Every inproceedings carries <crossref>conf/xxxNN</crossref>
    // pointing at its proceedings' key attribute — references that
    // "break the tree structure" (paper §3.2).
    let graph = RefGraph::from_key_references(store, "key", "crossref");
    println!(
        "reference overlay: {} crossref edges over {} objects",
        graph.len(),
        store.node_count()
    );

    // A paper's booktitle and its proceedings' title are far apart in
    // the tree but close through the reference edge.
    let paper_bt = db
        .search_word("ICDE")
        .iter()
        .find(|(p, _)| store.relation_name(*p).contains("booktitle"))
        .unwrap()
        .1;
    let proc_title = db
        .search_word("Proceedings")
        .iter()
        .find(|(p, _)| store.relation_name(*p).contains("proceedings/title"))
        .unwrap()
        .1;
    println!(
        "tree distance booktitle→proceedings-title: {}",
        distance(store, paper_bt, proc_title)
    );
    println!(
        "graph distance (via crossref):             {}",
        graph_distance(store, &graph, paper_bt, proc_title)
    );

    // --- Thesaurus broadening ----------------------------------------
    // "broaden a search that returned too few answers" (paper §4).
    let mut thesaurus = Thesaurus::new();
    thesaurus.add_synonyms(&["ICDE", "EDBT"]);

    let narrow = db.meet_terms(&["ICDE", "1999"]).unwrap();
    let broad = db
        .meet_terms_expanded(
            &["ICDE", "1999"],
            &thesaurus,
            &nearest_concept::MeetOptions::default(),
        )
        .unwrap();
    println!(
        "\n'ICDE 1999' answers: {} narrow, {} with {{ICDE, EDBT}} broadening",
        narrow.len(),
        broad.len()
    );

    // The broadened answers include EDBT publications.
    let edbt_answers = broad
        .results
        .iter()
        .filter(|a| nearest_concept::store::ObjectView::deep_text(store, a.oid).contains("EDBT"))
        .count();
    println!("of which EDBT records: {edbt_answers}");
}
