//! Demonstrates `ncq-server`: a batched concurrent query service over
//! the DBLP substitute corpus, driven both through the blocking client
//! handle (from several threads) and through the line protocol.
//!
//! ```text
//! cargo run --release --example server_demo
//! ```

use nearest_concept::datagen::{DblpConfig, DblpCorpus};
use nearest_concept::server::{serve_lines, Request, Response, Server, ServerConfig};
use nearest_concept::Database;
use std::sync::Arc;
use std::thread;

fn main() {
    let corpus = DblpCorpus::generate(&DblpConfig {
        papers_per_edition: 20,
        journal_articles_per_year: 5,
        ..DblpConfig::default()
    });
    let db = Arc::new(Database::from_document(&corpus.document));
    println!(
        "loaded DBLP substitute: {} objects, {} records",
        db.store().node_count(),
        corpus.records()
    );

    let server = Server::start(
        Arc::clone(&db),
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    );
    println!("serving with {} workers", server.worker_count());

    // --- concurrent clients over the blocking handle ---
    let years = ["1994", "1995", "1996", "1997"];
    let handles: Vec<_> = years
        .iter()
        .map(|year| {
            let client = server.client();
            let year = year.to_string();
            thread::spawn(move || {
                let answers = client.meet_terms(["ICDE", &year]).expect("query served");
                (year, answers.len())
            })
        })
        .collect();
    for h in handles {
        let (year, n) = h.join().expect("client thread");
        println!("meet(ICDE, {year}): {n} nearest concepts");
    }

    // --- the same queries through the line protocol ---
    let session = "PING\nSEARCH ICDE\nMEET ICDE 1995 WITHIN 8\nQUIT\n";
    let mut out = Vec::new();
    serve_lines(&server.client(), session.as_bytes(), &mut out).expect("in-memory transport");
    println!("--- line protocol session ---");
    print!("{}", String::from_utf8_lossy(&out));

    // --- one SQL round trip ---
    match server
        .client()
        .request(Request::sql(
            "select meet(a, b) within 10 from dblp/% as a, dblp/% as b \
             where a contains 'ICDE' and b contains '1995'",
        ))
        .expect("query served")
    {
        Response::Answers(a) => println!(
            "SQL meet: {} answers, top tag {:?}",
            a.len(),
            a.tags().first().copied().unwrap_or("-")
        ),
        other => println!("SQL gave {other:?}"),
    }

    let stats = server.shutdown();
    println!(
        "served {} requests in {} batches (max batch {}); {} term decodes, {} cache hits",
        stats.served, stats.batches, stats.max_batch, stats.term_decodes, stats.term_cache_hits
    );
}
