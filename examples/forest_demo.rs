//! Demonstrates forest serving: build three corpora (DBLP substitute,
//! multimedia substitute, a deep fork forest), snapshot each, describe
//! them in a versioned manifest (the multimedia corpus sharded 4-way),
//! cold-start a whole multi-corpus service from the manifest file, and
//! drive it over TCP — `CORPORA`, `USE`, corpus-routed `MEET`/`SQL`,
//! the `USE *` fan-out, a per-corpus hot swap, and the per-corpus
//! `STATS` lines.
//!
//! ```text
//! cargo run --release --example forest_demo
//! ```

use nearest_concept::datagen::{DblpConfig, DblpCorpus, MultimediaConfig, MultimediaCorpus};
use nearest_concept::server::{NetConfig, Server, ServerConfig, TcpAcceptor};
use nearest_concept::store::manifest::{Manifest, ManifestEntry};
use nearest_concept::{Database, ShardedDb};
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

fn deep_xml(depth: usize, pairs: usize) -> String {
    let mut xml = String::from("<root>");
    for _ in 0..pairs {
        xml.push_str("<h>");
        for _ in 0..depth {
            xml.push_str("<x>");
        }
        xml.push_str("<a>s</a>");
        for _ in 0..depth {
            xml.push_str("</x>");
        }
        for _ in 0..depth {
            xml.push_str("<y>");
        }
        xml.push_str("<b>t</b>");
        for _ in 0..depth {
            xml.push_str("</y>");
        }
        xml.push_str("</h>");
    }
    xml.push_str("</root>");
    xml
}

fn main() {
    let dir = std::env::temp_dir().join("ncq-forest-demo");
    std::fs::create_dir_all(&dir).expect("scratch dir");

    // Three corpora with distinct shapes.
    let dblp = Database::from_document(
        &DblpCorpus::generate(&DblpConfig {
            papers_per_edition: 20,
            journal_articles_per_year: 5,
            ..DblpConfig::default()
        })
        .document,
    );
    let multimedia = Database::from_document(
        &MultimediaCorpus::generate(&MultimediaConfig {
            noise_items: 400,
            ..MultimediaConfig::default()
        })
        .document,
    );
    let deep = Database::from_xml_str(&deep_xml(48, 200)).expect("deep corpus");

    // Snapshot each corpus; the multimedia one through the sharded
    // engine so its snapshot carries a 4-way partition cut.
    let dblp_snap = dir.join("dblp.ncq");
    let mm_snap = dir.join("multimedia.ncq");
    let deep_snap = dir.join("deep.ncq");
    dblp.save_snapshot(&dblp_snap).expect("save dblp");
    ShardedDb::new(multimedia.clone(), 4)
        .save_snapshot(&mm_snap)
        .expect("save multimedia");
    deep.save_snapshot(&deep_snap).expect("save deep");

    // One manifest names the forest: corpus -> snapshot, shard count,
    // whole-file checksum, layout version.
    let mut manifest = Manifest::new();
    for (name, path, shards) in [
        ("dblp", &dblp_snap, 1usize),
        ("multimedia", &mm_snap, 4),
        ("deep", &deep_snap, 1),
    ] {
        manifest
            .push(ManifestEntry::describe(name, path, shards).expect("describe"))
            .expect("push");
    }
    let mpath = dir.join("forest.ncqm");
    manifest.save(&mpath).expect("save manifest");
    println!(
        "manifest: {} corpora, {} bytes at {}",
        manifest.corpora.len(),
        std::fs::metadata(&mpath).map(|m| m.len()).unwrap_or(0),
        mpath.display()
    );

    // Cold-start the whole forest service from the manifest file.
    let t = Instant::now();
    let server = Server::open_manifest(
        &mpath,
        ServerConfig {
            workers: 2,
            snapshot_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("open manifest");
    println!(
        "forest cold start: {} + {} + {} objects in {:.1?}",
        dblp.store().node_count(),
        multimedia.store().node_count(),
        deep.store().node_count(),
        t.elapsed()
    );

    let acceptor =
        TcpAcceptor::bind("127.0.0.1:0", server.client(), NetConfig::default()).expect("bind");
    println!("serving the forest on {}", acceptor.local_addr());

    let mut stream = TcpStream::connect(acceptor.local_addr()).expect("connect");
    stream
        .write_all(
            b"CORPORA\n\
              USE deep\n\
              MEET s t\n\
              USE multimedia\n\
              SQL select meet(a, b) from corpus(dblp), dblp/% as a, dblp/% as b \
              where a contains 'ICDE' and b contains '1995'\n\
              USE *\n\
              SEARCH 1999\n\
              SNAPSHOT LOAD multimedia.ncq INTO multimedia\n\
              STATS\n\
              QUIT\n",
        )
        .expect("send");
    let mut reply = String::new();
    BufReader::new(stream.try_clone().expect("clone"))
        .read_to_string(&mut reply)
        .ok();
    // Elide the big answer payloads (XML lines); keep the frames and
    // control lines.
    println!("--- TCP session (answer XML elided) ---");
    for line in reply.lines() {
        if !line.starts_with(' ') && !line.starts_with('<') {
            println!("{line}");
        }
    }

    acceptor.shutdown();
    server.shutdown();
    for p in [&dblp_snap, &mm_snap, &deep_snap, &mpath] {
        std::fs::remove_file(p).ok();
    }
}
