//! The paper's SQL-with-paths dialect, end to end: the baseline query
//! with its ancestor-implied answers, the meet reformulation, and the §4
//! modifiers.
//!
//! ```sh
//! cargo run --example query_language
//! ```

use nearest_concept::{run_query, Database, QueryOutput};

fn show(db: &Database, title: &str, query: &str) {
    println!("-- {title}");
    println!("{query}");
    match run_query(db, query) {
        Ok(QueryOutput::Rows(rows)) => println!("{}\n", rows.to_answer_xml()),
        Ok(QueryOutput::Answers(a)) => println!("{}\n", a.to_answer_xml()),
        Err(e) => println!("error: {e}\n"),
    }
}

fn main() {
    let db = Database::from_xml_str(nearest_concept::datagen::FIGURE1_XML).unwrap();

    // The paper's introductory query: correct but over-broad — the
    // institute and bibliography rows are implied by the article row.
    show(
        &db,
        "baseline (paper §1): ancestor-implied answers",
        "select $T from %/$T as t1, %/$T as t2 \
         where t1 contains 'Bit' and t2 contains '1999'",
    );

    // The meet reformulation (paper §3.2): just the nearest concept.
    show(
        &db,
        "meet reformulation (paper §3.2)",
        "select meet(t1, t2) from bibliography/% as t1, bibliography/% as t2 \
         where t1 contains 'Bit' and t2 contains '1999'",
    );

    // §4 modifiers: distance bound…
    show(
        &db,
        "meet^4 — the hits are 5 edges apart, so the answer is empty",
        "select meet(t1, t2) within 4 \
         from bibliography/% as t1, bibliography/% as t2 \
         where t1 contains 'Bit' and t2 contains '1999'",
    );

    // …and result-type restriction.
    show(
        &db,
        "meet_Π — allow only article results",
        "select meet(t1, t2) only bibliography/institute/article \
         from bibliography/% as t1, bibliography/% as t2 \
         where t1 contains 'Bit' and t2 contains '1999'",
    );

    // Path scopes: restrict where the hits may come from.
    show(
        &db,
        "scoped variables — attribute hits",
        "select meet(t1, t2) \
         from bibliography/%/@key as t1, bibliography/% as t2 \
         where t1 contains 'BB99' and t2 contains 'Ben'",
    );
}
