//! Quickstart: query an XML document you know the *content* of, but not
//! the mark-up — the paper's opening scenario.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use nearest_concept::Database;

fn main() {
    // The paper's running example: a small bibliography whose schema the
    // user has never seen (Figure 1 of the paper).
    let db = Database::from_xml_str(nearest_concept::datagen::FIGURE1_XML)
        .expect("the example document is well-formed");

    println!("What did 'Bit' publish in '1999'?\n");

    // One call: full-text search for each term, then the meet operator
    // finds the nearest concept — the result *type* is discovered, not
    // specified.
    let answers = db.meet_terms(&["Bit", "1999"]).expect("query runs");

    println!("{}\n", answers.to_answer_xml());

    for answer in &answers.results {
        println!(
            "nearest concept: <{}> at {} (distance {} between the hits)",
            answer.tag, answer.path, answer.distance
        );
        for w in &answer.witnesses {
            println!(
                "  witness: {:?} ({} edges below)",
                w.text.as_deref().unwrap_or("?"),
                w.climb
            );
        }
    }

    // The same operator answers entirely different questions with the
    // same zero-schema formulation:
    for terms in [["Ben", "Bit"], ["Bob", "Byte"]] {
        let a = db.meet_terms(terms.as_ref()).unwrap();
        println!(
            "\nmeet({:?}) -> <{}>",
            terms,
            a.results.first().map(|r| r.tag.as_str()).unwrap_or("none")
        );
    }
}
