//! Demonstrates persistent snapshots: build the DBLP substitute once,
//! save it to the versioned binary snapshot, cold-start a fresh engine
//! from the file (no parse, no index preprocess), and serve it over
//! TCP — printing the cold-start timings side by side.
//!
//! ```text
//! cargo run --release --example snapshot_demo [-- SNAPSHOT_PATH]
//! ```
//!
//! With an explicit `SNAPSHOT_PATH` the demo only builds and saves
//! (twice is byte-identical — the CI `snapshot-compat` job runs it
//! with two paths and `cmp`s the files).

use nearest_concept::datagen::{DblpConfig, DblpCorpus};
use nearest_concept::server::{NetConfig, Server, ServerConfig, TcpAcceptor};
use nearest_concept::xml::{write_document, WriteOptions};
use nearest_concept::Database;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

fn main() {
    let out = std::env::args().nth(1);
    let corpus = DblpCorpus::generate(&DblpConfig {
        papers_per_edition: 20,
        journal_articles_per_year: 5,
        ..DblpConfig::default()
    });
    let xml = write_document(&corpus.document, WriteOptions::default());

    // Warm build: the pipeline every process start used to pay.
    let t = Instant::now();
    let db = Database::from_xml_str(&xml).expect("corpus parses");
    db.store().meet_index();
    db.store().depth_stats();
    db.store().partition_stats();
    let build_time = t.elapsed();
    println!(
        "parse+build: {} objects, {} tokens in {:.1?}",
        db.store().node_count(),
        db.index().vocabulary_size(),
        build_time
    );

    let path = std::env::temp_dir().join("ncq-snapshot-demo.ncq");
    let path = out.as_deref().map(Into::into).unwrap_or(path);
    let t = Instant::now();
    db.save_snapshot(&path).expect("save snapshot");
    let snapshot_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "saved {} bytes to {} in {:.1?}",
        snapshot_bytes,
        path.display(),
        t.elapsed()
    );
    if out.is_some() {
        // CI determinism mode: save only (run twice, `cmp` the files).
        return;
    }
    drop(db);

    // Cold start from the file alone.
    let t = Instant::now();
    let cold = Database::open_snapshot(&path).expect("load snapshot");
    let load_time = t.elapsed();
    println!(
        "snapshot cold start: {} objects in {:.1?} ({:.1}x faster than parse+build)",
        cold.store().node_count(),
        load_time,
        build_time.as_secs_f64() / load_time.as_secs_f64()
    );

    // Serve the cold-started engine over TCP (Server::open_snapshot
    // wraps exactly this load).
    let server = Server::open_snapshot(
        &path,
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("cold server");
    let acceptor =
        TcpAcceptor::bind("127.0.0.1:0", server.client(), NetConfig::default()).expect("bind");
    println!(
        "serving snapshot-loaded engine on {}",
        acceptor.local_addr()
    );

    let mut stream = TcpStream::connect(acceptor.local_addr()).expect("connect");
    stream
        .write_all(b"SEARCH ICDE\nMEET ICDE 1995 WITHIN 8\nQUIT\n")
        .expect("send");
    let mut reply = String::new();
    BufReader::new(stream.try_clone().expect("clone"))
        .read_to_string(&mut reply)
        .ok();
    println!("--- TCP session ---\n{reply}");

    acceptor.shutdown();
    server.shutdown();
    std::fs::remove_file(&path).ok();
}
