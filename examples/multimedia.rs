//! Nearest concepts in deeply nested feature-detector output (the paper's
//! first evaluation corpus), with distance bounds and ranking.
//!
//! ```sh
//! cargo run --release --example multimedia
//! ```

use nearest_concept::core::{distance, MeetOptions};
use nearest_concept::datagen::{MultimediaConfig, MultimediaCorpus};
use nearest_concept::Database;

fn main() {
    let corpus = MultimediaCorpus::generate(&MultimediaConfig {
        noise_items: 300,
        max_distance: 12,
        probes_per_distance: 1,
        ..MultimediaConfig::default()
    });
    let db = Database::from_document(&corpus.document);
    println!(
        "multimedia corpus: {} objects, {} distinct paths\n",
        db.store().node_count(),
        db.store().summary().len()
    );

    // Two keywords that co-occur in annotations at various distances.
    // Probe pairs were planted at exact distances; real queries behave
    // the same way, just less predictably.
    for d in [0usize, 4, 8, 12] {
        let (a, b) = MultimediaCorpus::marker_terms(d, 0);
        let ha = db.search(&a);
        let hb = db.search(&b);
        let meets = db.meet_hits(&[ha.clone(), hb.clone()], &MeetOptions::default());
        let m = &meets[0];
        println!(
            "terms planted {d:>2} edges apart -> meet <{}> (measured distance {})",
            db.store().label(m.node),
            m.distance
        );

        // The §4 distance bound: beyond δ the meet returns ⊥.
        let bounded = db.meet_hits(
            &[ha, hb],
            &MeetOptions {
                max_distance: Some(6),
                ..MeetOptions::default()
            },
        );
        println!(
            "   with meet^6:  {}",
            if bounded.is_empty() {
                "⊥ (too far apart)".to_string()
            } else {
                format!("<{}>", db.store().label(bounded[0].node))
            }
        );
    }

    // Ranking: throw four terms in at once; closer concepts rank first.
    let terms: Vec<String> = [(2usize, 0usize), (8, 0)]
        .iter()
        .flat_map(|&(d, k)| {
            let (a, b) = MultimediaCorpus::marker_terms(d, k);
            [a, b]
        })
        .collect();
    let inputs: Vec<_> = terms.iter().map(|t| db.search(t)).collect();
    let ranked = db.meet_hits(&inputs, &MeetOptions::default());
    println!("\nranked answers for {} terms:", terms.len());
    for (i, m) in ranked.iter().enumerate() {
        println!(
            "  #{} <{}> distance {} ({} witnesses)",
            i + 1,
            db.store().label(m.node),
            m.distance,
            m.witness_count
        );
    }

    // Pairwise distance as a primitive (paper §4): the number of joins is
    // the shortest-path length.
    let (a, b) = MultimediaCorpus::marker_terms(8, 0);
    let oa = db.search(&a).iter().next().unwrap().1;
    let ob = db.search(&b).iter().next().unwrap().1;
    println!("\nd({a}, {b}) = {} edges", distance(db.store(), oa, ob));
}
