//! Run a small query workload and print the SIMD kernel-dispatch
//! counters — the same numbers `STATS` reports as `simd.*` lines.
//!
//! ```sh
//! cargo run --release --example simd_probe
//! NCQ_SIMD=off cargo run --release --example simd_probe
//! ```
//!
//! The CI `simd-compat` job runs it under both settings and diffs the
//! output: the forced-scalar run must report `total.vector=0`, the
//! default run on vector hardware must report `total.vector>0` —
//! proving the matrix actually exercised both code paths rather than
//! running the same one twice.
//!
//! Output is one `key=value` per line, so it greps cleanly:
//!
//! ```text
//! mode=avx2
//! lower_bound.scalar=0
//! lower_bound.vector=412
//! ...
//! total.scalar=0
//! total.vector=9184
//! ```

use nearest_concept::core::{meet_sets, BatchQuery, MeetOptions};
use nearest_concept::{Database, MeetBackend, ShardedDb};

fn main() {
    // A small forked corpus whose leaves interleave three terms, so
    // the workload drives every vectorized kernel: posting-list
    // intersections (search), frontier algebra + interval probes
    // (meets), tagged merges (batches), and gather-side range probes
    // (the sharded backend).
    let mut xml = String::from("<root>");
    for f in 0..16 {
        xml.push_str("<x><x><x>");
        for i in 0..40 {
            let n = f * 40 + i;
            xml.push_str("<p>alpha");
            if n % 2 == 0 {
                xml.push_str(" beta");
            }
            if n % 3 == 0 {
                xml.push_str(" gamma");
            }
            xml.push_str("</p>");
        }
        xml.push_str("</x></x></x>");
    }
    xml.push_str("</root>");
    let db = Database::from_xml_str(&xml).expect("probe corpus");

    let alpha = db.search("alpha");
    let beta = db.search("beta");
    let gamma = db.search("gamma");
    // Phrase search intersects the per-word posting lists before the
    // adjacency check — the `intersect` kernel's main call site.
    let phrase = db.search("alpha beta gamma");

    // Homogeneous-set meets walk the frontier algebra: `intersect`
    // and `difference` over sorted oid sets.
    let leaves = |hits: &nearest_concept::fulltext::HitSet| {
        hits.groups()
            .values()
            .max_by_key(|v| v.len())
            .cloned()
            .unwrap_or_default()
    };
    let frontier = meet_sets(db.store(), &leaves(&alpha), &leaves(&beta)).expect("same-path sets");
    let options = MeetOptions::default();

    let inputs = vec![&alpha, &beta, &gamma];
    let queries: Vec<BatchQuery<'_>> = (0..8)
        .map(|_| BatchQuery::new(inputs.clone(), options.clone()))
        .collect();
    let batched = db.meet_hits_batch(&queries);

    let sharded = ShardedDb::new(db, 4);
    let gathered = sharded.meet_hit_groups(&[&alpha, &beta], &options);

    eprintln!(
        "workload: {} phrase hits, {} set meets, {} batch results, {} gathered meets",
        phrase.len(),
        frontier.meets.len(),
        batched.iter().map(Vec::len).sum::<usize>(),
        gathered.len()
    );

    let stats = nearest_concept::simd::dispatch_stats();
    println!("mode={}", nearest_concept::simd::mode().name());
    for (kernel, scalar, vector) in stats.lines() {
        println!("{kernel}.scalar={scalar}");
        println!("{kernel}.vector={vector}");
    }
    println!("total.scalar={}", stats.total_scalar());
    println!("total.vector={}", stats.total_vector());
}
