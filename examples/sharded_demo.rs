//! End-to-end sharded deployment: partition the DBLP substitute, serve
//! it through the `ncq-server` worker pool via the `MeetBackend`
//! dispatch, and talk to it over a real TCP socket.
//!
//! ```text
//! cargo run --release --example sharded_demo
//! ```

use nearest_concept::datagen::{DblpConfig, DblpCorpus};
use nearest_concept::server::{NetConfig, Server, ServerConfig, TcpAcceptor};
use nearest_concept::{Database, ShardedDb};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn main() {
    let corpus = DblpCorpus::generate(&DblpConfig {
        papers_per_edition: 40,
        journal_articles_per_year: 8,
        ..DblpConfig::default()
    });
    let db = Arc::new(Database::from_document(&corpus.document));
    println!(
        "corpus: {} objects, {} paths",
        db.store().node_count(),
        db.store().summary().len()
    );

    // Partition into 4 shards; the spine (ancestors of every chunk
    // root) is the only replicated state.
    let sharded = ShardedDb::new(Arc::clone(&db), 4);
    println!(
        "partition: {} shards, {} spine nodes, {} scatter workers",
        sharded.shard_count(),
        sharded.partition().spine_len(),
        sharded.worker_count()
    );
    for (i, s) in sharded.partition().shards().iter().enumerate() {
        println!(
            "  shard {i}: {} chunks, {} nodes, mass {}, oid range {:?}",
            s.roots.len(),
            s.nodes,
            s.mass,
            s.range
        );
    }

    // The same query through both engines — answers are identical.
    let single = db.meet_terms(&["ICDE", "1995"]).expect("meet");
    let scattered = sharded.meet_terms(&["ICDE", "1995"]).expect("meet");
    assert_eq!(single.to_detailed_xml(), scattered.to_detailed_xml());
    println!(
        "meet(ICDE, 1995): {} answers, first = <{}> (identical on both engines)",
        scattered.len(),
        scattered.results.first().map_or("-", |r| r.tag.as_str())
    );

    // Serve the sharded engine through the unchanged worker pool, over
    // a real socket.
    let server = Server::start_backend(Arc::new(sharded), ServerConfig::default());
    let acceptor = TcpAcceptor::bind(
        "127.0.0.1:0",
        server.client(),
        NetConfig {
            max_connections: 8,
            ..NetConfig::default()
        },
    )
    .expect("bind loopback");
    let addr = acceptor.local_addr();
    println!("serving on {addr}");

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"MEET ICDE 1995\nSEARCH ICDE\nSTATS\nQUIT\n")
        .expect("send");
    stream
        .shutdown(std::net::Shutdown::Write)
        .expect("half-close");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let head: Vec<&str> = response.lines().take(3).collect();
    println!("wire response head: {head:?}");
    let stats_at = response
        .lines()
        .position(|l| l.starts_with("served="))
        .expect("stats frame");
    for line in response.lines().skip(stats_at).take(7) {
        println!("  {line}");
    }

    acceptor.shutdown();
    let stats = server.shutdown();
    println!(
        "served {} requests, shed {} ({:.1}% shed rate)",
        stats.served,
        stats.shed,
        100.0 * stats.shed_rate()
    );
}
