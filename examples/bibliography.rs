//! The DBLP case study (paper §5, Figure 7): "list all publications in
//! the ICDE proceedings of a certain year" — without knowing the DBLP
//! mark-up.
//!
//! ```sh
//! cargo run --release --example bibliography
//! ```

use nearest_concept::core::{MeetOptions, PathFilter};
use nearest_concept::datagen::{DblpConfig, DblpCorpus};
use nearest_concept::Database;
use std::time::Instant;

fn main() {
    // Synthetic DBLP: 4 conference series over 1984–1999 (ICDE skips
    // 1985, like the real one did), plus journal articles.
    let corpus = DblpCorpus::generate(&DblpConfig {
        papers_per_edition: 40,
        journal_articles_per_year: 8,
        ..DblpConfig::default()
    });
    println!(
        "corpus: {} inproceedings, {} articles, {} editions",
        corpus.inproceedings,
        corpus.articles,
        corpus.editions.len()
    );

    let t = Instant::now();
    let db = Database::from_document(&corpus.document);
    println!(
        "loaded {} objects, {} relations in {:?}\n",
        db.store().node_count(),
        db.store().stats().edge_relations + db.store().stats().string_relations,
        t.elapsed()
    );

    // Full-text search: the user knows two strings, nothing else.
    let icde = db.search("ICDE");
    let year = db.search("1999");
    println!("'ICDE' hits: {}   '1999' hits: {}", icde.len(), year.len());

    // The meet, with the document root excluded (paper §5: "with the
    // document root excluded from the set of possible results").
    let options = MeetOptions {
        filter: PathFilter::exclude_root(db.store()),
        ..MeetOptions::default()
    };
    let t = Instant::now();
    let meets = db.meet_hits(&[icde, year], &options);
    println!(
        "meet found {} publications in {:?}\n",
        meets.len(),
        t.elapsed()
    );

    // Show a few answers with their discovered result types.
    for m in meets.iter().take(5) {
        let view = nearest_concept::store::ObjectView::assemble(db.store(), m.node);
        println!(
            "  <{}> key={:?} (distance {})",
            db.store().label(m.node),
            view.attributes
                .iter()
                .find(|(k, _)| k == "key")
                .map(|(_, v)| v.as_str())
                .unwrap_or("?"),
            m.distance
        );
    }

    // Count result types: mostly inproceedings, the proceedings records,
    // and (over the full year sweep) two planted false positives.
    let mut by_tag = std::collections::BTreeMap::new();
    for m in &meets {
        *by_tag.entry(db.store().label(m.node)).or_insert(0usize) += 1;
    }
    println!("\nresult types: {by_tag:?}");
}
