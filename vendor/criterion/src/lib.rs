//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io; this shim keeps the
//! workspace's `benches/` targets compiling and running with the subset of
//! criterion's API they use: `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Throughput`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: per benchmark, iterations are calibrated so one
//! sample takes roughly `measurement_time / sample_size`; `sample_size`
//! samples are collected and the **median ns/iter** is printed. No
//! statistics beyond that — swap in real criterion for rigor when the
//! registry is reachable.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Throughput annotation (printed alongside the median).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Identifier rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// Passed to the benchmark closure; `iter` runs the workload.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` for the calibrated number of iterations, timing the batch.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples (medians are taken over these).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up budget before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total sampling budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: impl Into<String>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        self.run(&id, &mut f);
    }

    /// Run one benchmark parameterized by an input.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(&id.name, &mut |b: &mut Bencher| f(b, input));
    }

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibrate: grow the iteration count until one batch costs at
        // least ~1/sample_size of the measurement budget (or 1 ms).
        let target = (self.measurement / self.sample_size as u32).max(Duration::from_millis(1));
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= target || iters >= 1 << 30 {
                break;
            }
            // Aim directly for the target from the observed cost. Floor
            // the per-iteration estimate at 1 ns: a release-mode batch
            // can finish in fewer nanoseconds than it ran iterations,
            // and the integer ratio would otherwise round to zero and
            // divide-by-zero the next line.
            let per_iter = (b.elapsed.as_nanos() / iters as u128).max(1);
            iters = ((target.as_nanos() / per_iter) as u64).clamp(iters + 1, iters * 100);
        }
        // Warm-up.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
        }
        // Samples.
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = samples[samples.len() / 2];
        let thrpt = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / median * 1e9 / (1 << 20) as f64
                )
            }
            Some(Throughput::Elements(n)) => {
                format!("  ({:.0} elem/s)", n as f64 / median * 1e9)
            }
            None => String::new(),
        };
        println!(
            "{}/{}: median {:.1} ns/iter over {} samples x {} iters{}",
            self.name, id, median, self.sample_size, iters, thrpt
        );
    }

    /// End the group (printing happens per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Benchmark driver (stand-in for criterion's).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark with default settings.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        self.benchmark_group("bench").bench_function(id, f);
    }
}

/// Re-export so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Bundle benchmark functions under one name (shim: just remembers them).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_measure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = 0u64;
        group.bench_function("sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
            ran += 1;
        });
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("param", 7), &7usize, |b, &p| {
            b.iter(|| p * 2);
        });
        group.finish();
        assert!(ran >= 3, "closure must run for calibration and samples");
    }
}
