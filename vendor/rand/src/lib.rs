//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the tiny API subset the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`RngExt::random_range`]. The generator is splitmix64 — statistically
//! fine for synthetic test corpora and, crucially, **deterministic**: the
//! datagen crate promises byte-identical corpora for equal seeds.
//!
//! Not cryptographically secure and not a drop-in for the real crate
//! beyond this subset; swap in the real `rand` when the registry is
//! reachable again.

use std::ops::Range;

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core 64-bit output; everything else derives from it.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Map 64 random bits into `lo..hi` (callers guarantee `lo < hi`).
    fn sample(lo: Self, hi: Self, bits: u64) -> Self;
}

macro_rules! impl_sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample(lo: Self, hi: Self, bits: u64) -> Self {
                let span = (hi - lo) as u64;
                lo + (bits % span) as $t
            }
        }
    )*};
}

macro_rules! impl_sample_signed {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample(lo: Self, hi: Self, bits: u64) -> Self {
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                lo.wrapping_add((bits % span) as $t)
            }
        }
    )*};
}

impl_sample_unsigned!(usize, u64, u32, u16, u8);
impl_sample_signed!(isize, i64, i32, i16, i8);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait RngExt: RngCore {
    /// Uniform sample from a half-open range. Panics on an empty range.
    fn random_range<T: SampleUniform + PartialOrd>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample empty range");
        T::sample(range.start, range.end, self.next_u64())
    }

    /// A uniformly random boolean.
    fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

impl<R: RngCore> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngCore, RngExt, SeedableRng};

    #[test]
    fn equal_seeds_give_equal_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.random_range(0usize..17);
            assert!(u < 17);
            let i = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn all_values_of_a_small_range_occur() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(3usize..3);
    }
}
